//! Integration tests of the worker-pool scheduler: every scheduling
//! policy (FIFO, priority work stealing, speculative re-execution)
//! produces byte-identical output; a seeded straggler is beaten by a
//! speculative copy (first completed result wins, the loser is
//! dropped); and the automatic skew response inserts a `repartition`
//! stage that routes records exactly like the manual one.

use std::time::Duration;

use tsj_mapreduce::{
    Cluster, ClusterConfig, Count, DatasetMode, Emitter, OutputSink, SchedulerConfig,
    SchedulerMode, ShuffleConfig, StraggleInjection, Transport,
};

fn cluster(threads: usize, partitions: usize, shuffle: ShuffleConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
    .with_dataset_mode(DatasetMode::Lazy)
}

fn fifo() -> SchedulerConfig {
    SchedulerConfig {
        mode: SchedulerMode::Fifo,
        ..SchedulerConfig::default()
    }
}

/// The two-stage pipeline under test (word count → count histogram).
/// Returns *unsorted* output so the assertions pin record order, not
/// just the multiset.
fn chained(c: &Cluster, docs: &[String]) -> (Vec<(u64, u64)>, tsj_mapreduce::SimReport) {
    c.input(docs)
        .map_reduce_combined(
            "wordcount",
            |doc: &String, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_owned(), 1);
                }
            },
            &Count,
            |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                out.emit((w.clone(), counts.iter().sum()));
            },
        )
        .unwrap()
        .map_reduce_combined(
            "histogram",
            |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
            &Count,
            |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((n, ones.iter().sum()));
            },
        )
        .unwrap()
        .collect()
        .unwrap()
}

fn docs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("w{} w{} w{} common shared{}", i % 7, i % 13, i, i % 3))
        .collect()
}

#[test]
fn scheduler_modes_are_byte_identical() {
    // The non-negotiable invariant: scheduling policy changes wall-clock
    // behaviour and observability counters, never output bytes or order.
    let input = docs(120);
    let speculative = SchedulerConfig {
        mode: SchedulerMode::Speculative,
        speculate_after: Duration::from_millis(1),
        straggle: None,
    };
    for shuffle in [
        ShuffleConfig::unbounded(),
        ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
    ] {
        for threads in [1usize, 4] {
            for partitions in [0usize, 5] {
                let base = cluster(threads, partitions, shuffle.clone());
                let (reference, _) = chained(&base.clone().with_scheduler(fifo()), &input);
                for mode in [SchedulerMode::Stealing, SchedulerMode::Speculative] {
                    let sched = match mode {
                        SchedulerMode::Speculative => speculative.clone(),
                        mode => SchedulerConfig {
                            mode,
                            ..SchedulerConfig::default()
                        },
                    };
                    let c = base.clone().with_scheduler(sched);
                    let (out, report) = chained(&c, &input);
                    assert_eq!(
                        out, reference,
                        "{mode:?} vs FIFO: threads={threads} partitions={partitions} \
                         shuffle={shuffle:?}"
                    );
                    if mode != SchedulerMode::Speculative {
                        assert_eq!(report.total_speculative_launched(), 0);
                    }
                    assert_eq!(
                        report.total_speculative_won(),
                        report.jobs().iter().map(|j| j.speculative_won).sum::<u64>()
                    );
                }
            }
        }
    }
}

#[test]
fn speculation_beats_a_seeded_straggler() {
    // Map task 0 of "wordcount" sleeps 600ms on its primary attempt
    // only (a slow *node*, not slow *data*). An idle worker must launch
    // a speculative copy after 5ms, the copy's result must win, and the
    // wave barrier must release long before the straggler wakes — all
    // without changing a byte of output.
    let input = docs(64);
    let shuffle = ShuffleConfig::unbounded();
    let reference = chained(
        &cluster(4, 3, shuffle.clone()).with_scheduler(fifo()),
        &input,
    )
    .0;

    let straggle_us = 600_000;
    let c = cluster(4, 3, shuffle).with_scheduler(SchedulerConfig {
        mode: SchedulerMode::Speculative,
        speculate_after: Duration::from_millis(5),
        straggle: Some(StraggleInjection {
            stage: "wordcount".into(),
            micros: straggle_us,
        }),
    });
    let (out, report) = chained(&c, &input);
    assert_eq!(out, reference, "first-result-wins must not perturb output");

    let wordcount = report
        .jobs()
        .iter()
        .find(|j| j.name == "wordcount")
        .expect("wordcount job in report");
    assert!(
        wordcount.speculative_launched >= 1,
        "no speculative copy launched: {wordcount:?}"
    );
    assert!(
        wordcount.speculative_won >= 1,
        "the speculative copy should beat a 600ms straggler: {wordcount:?}"
    );
    // The straggling primary still holds its worker for the full sleep,
    // but the stage must complete off the speculative copy well before
    // that: the whole wave is sub-millisecond work plus the 5ms
    // speculation threshold.
    assert!(
        wordcount.wall_secs < straggle_us as f64 / 1e6 * 0.75,
        "stage should not have waited out the straggler: wall={}s",
        wordcount.wall_secs
    );
}

#[test]
fn straggler_without_speculation_waits_out_the_sleep() {
    // Control for the test above: same injection under plain stealing
    // has nothing to rescue the wave, so the stage wall clock eats the
    // whole sleep. This pins that the injection actually fires.
    let input = docs(16);
    let c = cluster(4, 2, ShuffleConfig::unbounded()).with_scheduler(SchedulerConfig {
        mode: SchedulerMode::Stealing,
        speculate_after: Duration::from_millis(5),
        straggle: Some(StraggleInjection {
            stage: "wordcount".into(),
            micros: 100_000,
        }),
    });
    let reference = chained(&cluster(4, 2, ShuffleConfig::unbounded()), &input).0;
    let (out, report) = chained(&c, &input);
    assert_eq!(out, reference);
    let wordcount = report
        .jobs()
        .iter()
        .find(|j| j.name == "wordcount")
        .expect("wordcount job in report");
    assert!(
        wordcount.wall_secs >= 0.1,
        "the injected 100ms sleep should dominate the stage: wall={}s",
        wordcount.wall_secs
    );
    assert_eq!(wordcount.speculative_launched, 0);
    assert_eq!(wordcount.speculative_won, 0);
}

/// One skewed stage (every record routed to one partition by a
/// constant key) followed by a per-record stage whose output order
/// exposes the routing.
fn skewed_then_double(
    c: &Cluster,
    input: &[u64],
    manual_repartition: bool,
) -> (Vec<u64>, tsj_mapreduce::SimReport) {
    let mut skewed = c
        .input(input)
        .map_reduce(
            "skew",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(0, n),
            |_: &u64, ns: Vec<u64>, out: &mut OutputSink<u64>| {
                for n in ns {
                    out.emit(n);
                }
            },
        )
        .unwrap();
    // Force the stage boundary to materialize inside the runtime so the
    // planner can observe the partition-size statistics.
    skewed.records().unwrap();
    let skewed = if manual_repartition {
        skewed.repartition(c.partitions()).unwrap()
    } else {
        skewed
    };
    skewed
        .map_reduce(
            "double",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |_: &u64, ns: Vec<u64>, out: &mut OutputSink<u64>| {
                for n in ns {
                    out.emit(n * 2);
                }
            },
        )
        .unwrap()
        .collect()
        .unwrap()
}

#[test]
fn auto_repartition_matches_manual_repartition() {
    // With every record of the "skew" stage in one partition
    // (sizes [N,0,0,0] → skew 4.0), a cluster with auto-repartition
    // enabled must insert the hidden stage and produce output
    // byte-identical (same records, same order) to the manual
    // `repartition(partitions)` call at the same boundary.
    let input: Vec<u64> = (0..200).collect();
    let c = cluster(4, 4, ShuffleConfig::unbounded());

    let auto = c.clone().with_auto_repartition(Some(1.5));
    let (auto_out, auto_report) = skewed_then_double(&auto, &input, false);
    let (manual_out, manual_report) = skewed_then_double(&c, &input, true);

    assert!(
        auto_report
            .jobs()
            .iter()
            .any(|j| j.name == "repartition(4).auto"),
        "auto-inserted stage missing from report: {:?}",
        auto_report
            .jobs()
            .iter()
            .map(|j| j.name.clone())
            .collect::<Vec<_>>()
    );
    assert!(
        manual_report
            .jobs()
            .iter()
            .any(|j| j.name == "repartition(4)"),
        "manual repartition stage missing from its report"
    );
    assert_eq!(auto_out, manual_out, "auto vs manual repartition output");
}

#[test]
fn auto_repartition_stays_out_of_balanced_boundaries() {
    // A well-spread stage output must not trigger the skew response,
    // and an explicit repartition stage must never be doubled up.
    let input: Vec<u64> = (0..200).collect();
    let c = cluster(4, 4, ShuffleConfig::unbounded()).with_auto_repartition(Some(4.0));

    let mut spread = c
        .input(&input)
        .map_reduce(
            "spread",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |_: &u64, ns: Vec<u64>, out: &mut OutputSink<u64>| {
                for n in ns {
                    out.emit(n);
                }
            },
        )
        .unwrap();
    spread.records().unwrap();
    let (_, report) = spread
        .repartition(4)
        .unwrap()
        .map_reduce(
            "double",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |_: &u64, ns: Vec<u64>, out: &mut OutputSink<u64>| {
                for n in ns {
                    out.emit(n * 2);
                }
            },
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(
        !report.jobs().iter().any(|j| j.name.ends_with(".auto")),
        "auto repartition fired on a balanced or already-repartitioned boundary: {:?}",
        report
            .jobs()
            .iter()
            .map(|j| j.name.clone())
            .collect::<Vec<_>>()
    );
}
