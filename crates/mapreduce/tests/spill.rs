//! End-to-end tests of the memory-bounded shuffle: jobs run with tiny
//! combine/spill thresholds must produce exactly the output of the
//! unbounded configuration, never hold more than the threshold in a
//! mapper's buffer, and account the spilled volume in `JobStats`.

use std::path::PathBuf;

use tsj_mapreduce::{
    Cluster, ClusterConfig, Count, Dedup, Emitter, JobError, OutputSink, ShuffleConfig,
};

fn cluster(machines: usize, threads: usize, partitions: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    // Pin the unbounded default so TSJ_SPILL_THRESHOLD in the environment
    // (the CI spill leg) cannot turn the reference runs into spilled runs.
    .with_shuffle_config(ShuffleConfig::unbounded())
}

fn wordcount_docs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("the quick token{} jumps the t{} the", i % 53, i % 7))
        .collect()
}

fn wordcount(c: &Cluster, docs: &[String]) -> tsj_mapreduce::JobResult<(String, u64)> {
    c.run_combined(
        "spill.wordcount",
        docs,
        |doc: &String, e: &mut Emitter<String, u64>| {
            for w in doc.split_whitespace() {
                e.emit(w.to_owned(), 1);
            }
        },
        &Count,
        |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
            out.emit((w.clone(), counts.iter().sum()));
        },
    )
    .unwrap()
}

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

#[test]
fn bounded_wordcount_matches_unbounded_and_accounts_spills() {
    let docs = wordcount_docs(600);
    let unbounded = wordcount(&cluster(8, 4, 0), &docs);
    assert_eq!(unbounded.stats.spilled_records, 0);
    assert_eq!(unbounded.stats.spill_bytes, 0);
    assert_eq!(unbounded.stats.spill_secs, 0.0);

    let bounded_cluster = cluster(8, 4, 0).with_shuffle_config(ShuffleConfig::bounded(32, 64));
    let bounded = wordcount(&bounded_cluster, &docs);

    assert_eq!(
        sorted(unbounded.output),
        sorted(bounded.output),
        "bounded mappers must not change job output"
    );
    assert_eq!(
        bounded.stats.map_output_records,
        unbounded.stats.map_output_records
    );
    // The memory bound held and the spill path actually engaged.
    assert!(
        bounded.stats.spilled_records > 0,
        "tiny thresholds must force spilling"
    );
    assert!(bounded.stats.spill_bytes > 0);
    assert!(
        bounded.stats.spill_secs > 0.0,
        "spill I/O must be charged by the cost model"
    );
    assert!(
        bounded.stats.sim_total_secs > 0.0
            && bounded.stats.sim_total_secs
                >= bounded.stats.shuffle_secs + bounded.stats.spill_secs
    );
    assert!(
        bounded.stats.peak_buffered_records <= 64,
        "peak in-memory records {} exceeded the spill threshold",
        bounded.stats.peak_buffered_records
    );
    // Periodic combining still shrinks the shuffle relative to raw emits.
    assert!(bounded.stats.shuffle_records < bounded.stats.map_output_records);
    // Spilled records are part of the shuffled volume, never extra.
    assert!(bounded.stats.spilled_records <= bounded.stats.shuffle_records);
    assert_eq!(bounded.stats.reduce_groups, unbounded.stats.reduce_groups);
}

#[test]
fn spill_threshold_bounds_mappers_even_without_a_combiner() {
    let input: Vec<u64> = (0..5000).collect();
    let run = |shuffle: ShuffleConfig| {
        cluster(16, 4, 0)
            .with_shuffle_config(shuffle)
            .run(
                "spill.nocombiner",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 701, *n),
                |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((*k, vs.iter().copied().fold(0, u64::wrapping_add)));
                },
            )
            .unwrap()
    };
    let unbounded = run(ShuffleConfig::unbounded());
    let bounded = run(ShuffleConfig {
        spill_threshold: Some(16),
        ..ShuffleConfig::default()
    });
    assert_eq!(sorted(unbounded.output), sorted(bounded.output));
    assert!(bounded.stats.peak_buffered_records <= 16);
    // Without a combiner every record is shuffled; spilling rerouted most
    // of them through disk but changed no counts.
    assert_eq!(
        bounded.stats.shuffle_records,
        bounded.stats.map_output_records
    );
    assert!(bounded.stats.spilled_records > 4000);
}

#[test]
fn burst_emitting_mapper_is_still_bounded() {
    // One input record emits a burst far larger than the threshold: the
    // emit-time cap (not the between-records check) must hold the line.
    let input: Vec<u64> = (0..8).collect();
    let bounded = cluster(4, 2, 0)
        .with_shuffle_config(ShuffleConfig::bounded(50, 100))
        .run_combined(
            "spill.burst",
            &input,
            |n: &u64, e: &mut Emitter<u64, u64>| {
                for i in 0..3000u64 {
                    e.emit(i % 997, *n);
                }
            },
            &Dedup,
            |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64, u64)>| {
                out.emit((*k, vs.len() as u64, vs.iter().copied().min().unwrap()));
            },
        )
        .unwrap();
    assert!(
        bounded.stats.peak_buffered_records <= 100,
        "peak {} breached the hard cap",
        bounded.stats.peak_buffered_records
    );
    assert!(bounded.stats.spilled_records > 0);
    assert_eq!(bounded.stats.reduce_groups, 997);
}

#[test]
fn spilled_output_is_deterministic_across_thread_counts() {
    let input: Vec<u64> = (0..4000).collect();
    let run = |threads: usize| {
        cluster(16, threads, 0)
            .with_shuffle_config(ShuffleConfig::bounded(20, 40))
            .run(
                "spill.threads",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 97, *n),
                |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((*k, vs.iter().copied().fold(0, u64::wrapping_add)));
                },
            )
            .unwrap()
            .output
    };
    // Stronger than multiset equality: the merge path's group order is a
    // pure function of data and partition count, so even the unsorted
    // concatenated output must match across thread counts.
    let reference = run(1);
    assert_eq!(run(2), reference);
    assert_eq!(run(8), reference);
}

#[test]
fn bounded_output_is_identical_across_partition_and_machine_counts() {
    let input: Vec<u64> = (0..3000).collect();
    let run = |machines: usize, partitions: usize, shuffle: ShuffleConfig| {
        sorted(
            cluster(machines, 4, partitions)
                .with_shuffle_config(shuffle)
                .run_combined(
                    "spill.partitions",
                    &input,
                    |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 211, 1),
                    &Count,
                    |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                        out.emit((*k, vs.iter().sum()));
                    },
                )
                .unwrap()
                .output,
        )
    };
    let reference = run(16, 0, ShuffleConfig::unbounded());
    for (machines, partitions) in [(1, 1), (16, 7), (16, 64), (3, 0), (64, 100)] {
        assert_eq!(
            run(machines, partitions, ShuffleConfig::bounded(16, 32)),
            reference,
            "machines = {machines}, partitions = {partitions}"
        );
    }
}

#[test]
fn spill_dir_is_cleaned_up_after_the_job() {
    let base = std::env::temp_dir().join(format!("tsj-spill-test-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let input: Vec<u64> = (0..2000).collect();
    let out = cluster(8, 4, 0)
        .with_shuffle_config(ShuffleConfig {
            combine_threshold: Some(16),
            spill_threshold: Some(32),
            spill_dir: Some(PathBuf::from(&base)),
            ..ShuffleConfig::default()
        })
        .run_combined(
            "spill.cleanup",
            &input,
            // Distinct keys: the periodic combine cannot shrink the
            // buffer, so the spill threshold must engage.
            |n: &u64, e: &mut Emitter<u64, u64>| e.emit(*n, 1),
            &Count,
            |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((*k, vs.iter().sum()));
            },
        )
        .unwrap();
    assert!(out.stats.spilled_records > 0, "job must actually spill");
    let leftovers: Vec<_> = std::fs::read_dir(&base).unwrap().collect();
    assert!(
        leftovers.is_empty(),
        "spill segments must not outlive their job: {leftovers:?}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn worker_panics_still_surface_with_spilling_enabled() {
    let input: Vec<u64> = (0..500).collect();
    let err = cluster(4, 2, 0)
        .with_shuffle_config(ShuffleConfig::bounded(8, 16))
        .run(
            "spill.panic",
            &input,
            |n: &u64, e: &mut Emitter<u64, u64>| {
                if *n == 300 {
                    panic!("poison record");
                }
                e.emit(n % 7, *n);
            },
            |_: &u64, _: Vec<u64>, _: &mut OutputSink<u64>| {},
        )
        .unwrap_err();
    match err {
        JobError::WorkerPanic { phase, message } => {
            assert_eq!(phase, "map");
            assert!(message.contains("poison record"));
        }
        other => panic!("expected a map worker panic, got {other:?}"),
    }
}

#[test]
fn string_keys_and_values_roundtrip_through_spill_files() {
    // Variable-length keys and values exercise the length-prefixed frames.
    let docs: Vec<String> = (0..400)
        .map(|i| format!("{} {}", "prefix".repeat(i % 9 + 1), i % 31))
        .collect();
    let run = |shuffle: ShuffleConfig| {
        sorted(
            cluster(8, 4, 0)
                .with_shuffle_config(shuffle)
                .run(
                    "spill.strings",
                    &docs,
                    |doc: &String, e: &mut Emitter<String, String>| {
                        let mut it = doc.split_whitespace();
                        let k = it.next().unwrap().to_owned();
                        let v = it.next().unwrap().to_owned();
                        e.emit(k, v);
                    },
                    |k: &String, mut vs: Vec<String>, out: &mut OutputSink<(String, String)>| {
                        vs.sort();
                        out.emit((k.clone(), vs.join(",")));
                    },
                )
                .unwrap()
                .output,
        )
    };
    assert_eq!(
        run(ShuffleConfig::unbounded()),
        run(ShuffleConfig::bounded(10, 20))
    );
}
