//! Job-level tests of the shuffle transport: the multi-process file
//! exchange and the remote network exchange must reproduce the
//! in-process handoff's output exactly, account their bytes (and
//! fetches), charge simulated transport time, clean up their exchange
//! directories, and compose with mapper spilling and the fan-in-capped
//! hierarchical merge.

use std::path::PathBuf;

use tsj_mapreduce::{
    Cluster, ClusterConfig, Count, Emitter, FaultConfig, JobResult, OutputSink, ShuffleConfig,
    Transport,
};

fn cluster(machines: usize, threads: usize, partitions: usize, shuffle: ShuffleConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
}

fn wordcount_docs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("the quick token{} jumps the t{} the", i % 53, i % 7))
        .collect()
}

fn wordcount(c: &Cluster, docs: &[String]) -> JobResult<(String, u64)> {
    c.run_combined(
        "transport.wordcount",
        docs,
        |doc: &String, e: &mut Emitter<String, u64>| {
            for w in doc.split_whitespace() {
                e.emit(w.to_owned(), 1);
            }
        },
        &Count,
        |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
            out.emit((w.clone(), counts.iter().sum()));
        },
    )
    .unwrap()
}

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

#[test]
fn multiprocess_wordcount_matches_inprocess_and_accounts_bytes() {
    let docs = wordcount_docs(600);
    let in_proc = wordcount(&cluster(8, 4, 0, ShuffleConfig::unbounded()), &docs);
    assert_eq!(in_proc.stats.transport, "in-process");
    assert_eq!(in_proc.stats.transport_bytes, 0);
    assert_eq!(in_proc.stats.transport_secs, 0.0);

    let multi = wordcount(
        &cluster(
            8,
            4,
            0,
            ShuffleConfig::unbounded().with_transport(Transport::MultiProcess),
        ),
        &docs,
    );
    assert_eq!(multi.stats.transport, "multi-process");
    assert_eq!(sorted(in_proc.output), sorted(multi.output));
    // Every shuffled record crossed the exchange as framed bytes: at
    // least the 4-byte length prefix + 8-byte fingerprint per record.
    assert!(
        multi.stats.transport_bytes >= 12 * multi.stats.shuffle_records,
        "transport_bytes {} too small for {} shuffled records",
        multi.stats.transport_bytes,
        multi.stats.shuffle_records
    );
    assert!(
        multi.stats.transport_secs > 0.0,
        "exchange volume must be charged"
    );
    assert_eq!(
        multi.stats.shuffle_records, in_proc.stats.shuffle_records,
        "the transport moves records; it must not change how many there are"
    );
    assert!(multi.stats.sim_total_secs > in_proc.stats.sim_total_secs);
}

#[test]
fn multiprocess_output_is_deterministic_across_threads_and_identical_to_inprocess_spilling() {
    // Once anything spills, both transports reduce through the same
    // fingerprint-order merge — so their unsorted outputs must be
    // *identical*, not merely equal as multisets.
    let docs = wordcount_docs(500);
    let reference = wordcount(&cluster(8, 1, 0, ShuffleConfig::bounded(16, 32)), &docs).output;
    for threads in [2usize, 8] {
        for spill in [None, Some((16usize, 32usize))] {
            let mut shuffle = match spill {
                Some((c, s)) => ShuffleConfig::bounded(c, s),
                None => ShuffleConfig::unbounded(),
            };
            shuffle.transport = Transport::MultiProcess;
            let got = wordcount(&cluster(8, threads, 0, shuffle), &docs).output;
            assert_eq!(got, reference, "threads = {threads}, spill = {spill:?}");
        }
    }
}

#[test]
fn exchange_dir_is_cleaned_up_and_spill_stats_still_account() {
    let base = std::env::temp_dir().join(format!("tsj-transport-test-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let docs = wordcount_docs(800);
    let shuffle = ShuffleConfig {
        combine_threshold: Some(16),
        spill_threshold: Some(32),
        spill_dir: Some(PathBuf::from(&base)),
        transport: Transport::MultiProcess,
        ..ShuffleConfig::default()
    };
    let out = wordcount(&cluster(8, 4, 0, shuffle), &docs);
    assert!(out.stats.spilled_records > 0, "job must actually spill");
    assert!(out.stats.spill_runs > 0);
    assert!(out.stats.transport_bytes > 0);
    let leftovers: Vec<_> = std::fs::read_dir(&base).unwrap().collect();
    assert!(
        leftovers.is_empty(),
        "exchange + spill dirs must not outlive their job: {leftovers:?}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn merge_fan_in_cap_engages_and_preserves_output() {
    // Tiny spill threshold over distinct keys → far more sorted runs than
    // the cap; the hierarchical merge must engage yet change nothing.
    let input: Vec<u64> = (0..4000).collect();
    let run = |shuffle: ShuffleConfig| {
        cluster(4, 4, 0, shuffle)
            .run(
                "transport.fanin",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 701, *n),
                |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((*k, vs.iter().copied().fold(0, u64::wrapping_add)));
                },
            )
            .unwrap()
    };
    let reference = run(ShuffleConfig::unbounded());

    for transport in [
        Transport::InProcess,
        Transport::MultiProcess,
        Transport::Remote,
    ] {
        let uncapped = run(ShuffleConfig::bounded(4, 8).with_transport(transport));
        assert!(
            uncapped.stats.spill_runs > 16,
            "tiny threshold must force many runs (got {})",
            uncapped.stats.spill_runs
        );
        assert_eq!(uncapped.stats.merge_passes, 0);

        let capped = run(ShuffleConfig::bounded(4, 8)
            .with_transport(transport)
            .with_merge_fan_in(4));
        assert!(
            capped.stats.merge_passes > 0,
            "runs ≫ fan-in must trigger hierarchical merge passes ({transport:?})"
        );
        assert!(
            capped.stats.merge_scratch_bytes > 0,
            "pre-merge passes must account their scratch I/O ({transport:?})"
        );
        assert!(
            capped.stats.spill_secs > uncapped.stats.spill_secs,
            "scratch I/O must be charged by the cost model ({transport:?})"
        );
        assert_eq!(
            sorted(capped.output.clone()),
            sorted(reference.output.clone()),
            "{transport:?}"
        );
        assert_eq!(
            capped.output, uncapped.output,
            "the cap must not even reorder the output ({transport:?})"
        );
    }
}

#[test]
fn uncombined_jobs_cross_the_exchange_too() {
    // No combiner, burst emits: exercises the transport on raw map
    // output, where in-memory partitions would otherwise reduce in
    // first-occurrence order.
    let input: Vec<u64> = (0..300).collect();
    let run = |shuffle: ShuffleConfig| {
        cluster(16, 4, 5, shuffle)
            .run(
                "transport.nocombiner",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| {
                    for j in 0..8u64 {
                        e.emit((n * 31 + j) % 97, *n);
                    }
                },
                |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64, u64)>| {
                    out.emit((*k, vs.len() as u64, vs.iter().copied().min().unwrap()));
                },
            )
            .unwrap()
    };
    let in_proc = run(ShuffleConfig::unbounded());
    let multi = run(ShuffleConfig::unbounded().with_transport(Transport::MultiProcess));
    assert_eq!(sorted(in_proc.output), sorted(multi.output));
    assert_eq!(multi.stats.reduce_groups, in_proc.stats.reduce_groups);
    assert!(multi.stats.transport_bytes > 0);
}

#[test]
fn remote_wordcount_matches_inprocess_and_accounts_fetches() {
    let docs = wordcount_docs(600);
    let in_proc = wordcount(&cluster(8, 4, 0, ShuffleConfig::unbounded()), &docs);

    let remote = wordcount(
        &cluster(
            8,
            4,
            0,
            ShuffleConfig::unbounded().with_transport(Transport::Remote),
        ),
        &docs,
    );
    assert_eq!(remote.stats.transport, "remote");
    assert_eq!(sorted(in_proc.output), sorted(remote.output));
    assert_eq!(remote.stats.shuffle_records, in_proc.stats.shuffle_records);
    // Every byte of the exchange crossed a socket: directory lookups plus
    // at least one ranged read per run, and the fetched payload is
    // exactly the exchanged volume when nothing drops.
    assert!(remote.stats.transport_bytes > 0);
    assert!(remote.stats.transport_secs > 0.0);
    assert!(remote.stats.fetch_requests > 0);
    assert_eq!(remote.stats.fetch_bytes, remote.stats.transport_bytes);
    assert_eq!(remote.stats.fetch_retries, 0, "no faults, no retries");
    // The in-process job never touches the fetch path.
    assert_eq!(in_proc.stats.fetch_requests, 0);
}

#[test]
fn remote_output_is_deterministic_across_threads_and_identical_to_multiprocess() {
    // The remote exchange fetches the same runs the multi-process
    // transport would copy, so once anything spills the two reduce
    // through identical segment sets: unsorted outputs must be
    // *identical*, not merely equal as multisets.
    let docs = wordcount_docs(500);
    let reference = wordcount(
        &cluster(
            8,
            1,
            0,
            ShuffleConfig::bounded(16, 32).with_transport(Transport::MultiProcess),
        ),
        &docs,
    )
    .output;
    for threads in [2usize, 8] {
        for spill in [None, Some((16usize, 32usize))] {
            let mut shuffle = match spill {
                Some((c, s)) => ShuffleConfig::bounded(c, s),
                None => ShuffleConfig::unbounded(),
            };
            shuffle.transport = Transport::Remote;
            let got = wordcount(&cluster(8, threads, 0, shuffle), &docs).output;
            assert_eq!(got, reference, "threads = {threads}, spill = {spill:?}");
        }
    }
}

#[test]
fn remote_exchange_dir_is_cleaned_up() {
    let base =
        std::env::temp_dir().join(format!("tsj-remote-transport-test-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let docs = wordcount_docs(400);
    let shuffle = ShuffleConfig {
        combine_threshold: Some(16),
        spill_threshold: Some(32),
        spill_dir: Some(PathBuf::from(&base)),
        transport: Transport::Remote,
        ..ShuffleConfig::default()
    };
    let out = wordcount(&cluster(8, 4, 0, shuffle), &docs);
    assert!(out.stats.spilled_records > 0, "job must actually spill");
    assert!(out.stats.transport_bytes > 0);
    let leftovers: Vec<_> = std::fs::read_dir(&base).unwrap().collect();
    assert!(
        leftovers.is_empty(),
        "exchange + spill dirs must not outlive their job: {leftovers:?}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn remote_with_injected_faults_retries_and_output_is_unchanged() {
    let docs = wordcount_docs(400);
    let clean = wordcount(
        &cluster(
            8,
            4,
            0,
            ShuffleConfig::unbounded().with_transport(Transport::Remote),
        ),
        &docs,
    );
    let faulty = wordcount(
        &cluster(
            8,
            4,
            0,
            ShuffleConfig::unbounded()
                .with_transport(Transport::Remote)
                .with_net_fault(FaultConfig {
                    drop_nth: 3,
                    stall_us: 100,
                    seed: 7,
                }),
        ),
        &docs,
    );
    assert!(
        faulty.stats.fetch_retries > 0,
        "a 1-in-3 drop rate must force retries (got {} over {} requests)",
        faulty.stats.fetch_retries,
        faulty.stats.fetch_requests
    );
    assert_eq!(
        faulty.output, clean.output,
        "injected faults must never change job output"
    );
    assert_eq!(faulty.stats.transport_bytes, clean.stats.transport_bytes);
}
