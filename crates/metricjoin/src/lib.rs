//! Hybrid Metric Joiner (HMJ): the metric-space join baseline of Sec. V-E.
//!
//! The paper compares TSJ against "an in-house-built algorithm that is a
//! hybrid of the most scalable and efficient algorithms \[53\], \[68\] proposed
//! for metric-space joins":
//!
//! * records are dissected into Voronoi partitions among sampled centroids
//!   (ClusterJoin \[53\]), each record landing in its *home* (nearest
//!   centroid) partition;
//! * the *general filter* replicates a record into every partition whose
//!   centroid is within `2T` of optimal — the margin that guarantees every
//!   similar pair shares at least one partition (both members' homes
//!   qualify, so verification responsibility can be pinned to
//!   `min(home_x, home_y)` and no global dedup pass is needed);
//! * distance-metric symmetry is exploited to verify each pair once
//!   (MR-MAPSS \[68\]);
//! * oversized partitions are *recursively repartitioned* with
//!   sub-centroids \[68\];
//! * inside a partition, the triangle inequality prunes pairs through the
//!   centroid-distance window `|d(x, c) − d(y, c)| > T`.
//!
//! (The clique/biclique output compression of \[68\] is not reproduced — it
//! compresses output, not comparisons, and the paper's Fig. 7 claim is
//! about runtime/scalability, which this implementation exhibits: dense
//! name clusters produce heavy partitions whose reducers straggle.)
//!
//! NSLD being a metric (Theorem 2) is exactly what makes this baseline
//! *applicable*; the evaluation shows why it is nonetheless the wrong tool
//! for tokenized strings.

pub mod vptree;

pub use vptree::VpTree;

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tsj_mapreduce::{Cluster, Emitter, FxBuildHasher, JobError, OutputSink, SimReport, Spill};
use tsj_setdist::{nsld, nsld_within, Aligning};
use tsj_tokenize::{Corpus, StringId};

/// A verified similar pair (`a < b`, `dist ≤ T`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPair {
    pub a: u32,
    pub b: u32,
    pub dist: f64,
}

/// Job outputs are [`Spill`] so a dataset-producing stage can keep them
/// runtime-side (and spill them) instead of materializing a driver `Vec`.
impl Spill for MetricPair {
    fn spill(&self, out: &mut Vec<u8>) {
        self.a.spill(out);
        self.b.spill(out);
        self.dist.spill(out);
    }

    fn restore(buf: &mut &[u8]) -> Option<Self> {
        Some(Self {
            a: u32::restore(buf)?,
            b: u32::restore(buf)?,
            dist: f64::restore(buf)?,
        })
    }
}

/// HMJ tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmjConfig {
    /// Number of sampled Voronoi centroids (the paper's partition count).
    pub num_centroids: usize,
    /// Partitions larger than this are recursively repartitioned.
    pub max_partition_size: usize,
    /// Recursion depth limit (guards degenerate clusters where
    /// sub-centroids stop separating records — the paper's "fairly dense
    /// clusters" failure mode).
    pub max_depth: usize,
    /// Centroid sampling seed.
    pub seed: u64,
    /// Abort the join once this many distance evaluations have been spent
    /// (`None` = unlimited). This reproduces the paper's Fig. 7 protocol --
    /// "HMJ did not finish on 100 machines in a reasonable amount of time"
    /// -- with a deterministic budget instead of a stopwatch; an aborted
    /// join reports [`HmjOutput::dnf`] and discards its partial pairs.
    pub max_distance_computations: Option<u64>,
}

impl Default for HmjConfig {
    fn default() -> Self {
        Self {
            num_centroids: 64,
            max_partition_size: 512,
            max_depth: 3,
            seed: 0xC1_05_7E,
            max_distance_computations: None,
        }
    }
}

/// The join output: pairs plus the pipeline report.
#[derive(Debug)]
pub struct HmjOutput {
    /// Verified pairs sorted by `(a, b)`; empty when [`HmjOutput::dnf`].
    pub pairs: Vec<MetricPair>,
    /// Simulation report (one partition+verify job).
    pub report: SimReport,
    /// `true` when the distance-computation budget was exhausted: the join
    /// Did Not Finish (the paper's 100-machines outcome in Fig. 7).
    pub dnf: bool,
}

impl HmjOutput {
    pub fn sim_secs(&self) -> f64 {
        self.report.total_sim_secs()
    }
}

/// The joiner bound to a cluster.
#[derive(Debug, Clone)]
pub struct HmjJoiner<'c> {
    cluster: &'c Cluster,
    cfg: HmjConfig,
}

/// A record replicated into a partition.
///
/// Public as the workspace's exemplar of a job-specific [`Spill`] codec
/// on a plain struct (fixed-width fields, including an `f64`); its
/// roundtrip behaviour is property-tested in
/// `crates/mapreduce/tests/codec_roundtrip.rs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replica {
    pub sid: u32,
    /// The record's home partition (nearest centroid).
    pub home: u32,
    /// Distance to *this* partition's centroid (window pruning).
    pub dist_to_centroid: f64,
}

/// Shuffle values must be spillable so the partition job can run with
/// memory-bounded mappers (`ShuffleConfig`).
impl Spill for Replica {
    fn spill(&self, out: &mut Vec<u8>) {
        self.sid.spill(out);
        self.home.spill(out);
        self.dist_to_centroid.spill(out);
    }

    fn restore(buf: &mut &[u8]) -> Option<Self> {
        Some(Self {
            sid: u32::restore(buf)?,
            home: u32::restore(buf)?,
            dist_to_centroid: f64::restore(buf)?,
        })
    }
}

impl<'c> HmjJoiner<'c> {
    pub fn new(cluster: &'c Cluster, cfg: HmjConfig) -> Self {
        assert!(cfg.num_centroids >= 1);
        assert!(cfg.max_partition_size >= 2);
        Self { cluster, cfg }
    }

    /// NSLD self-join under threshold `t`.
    pub fn self_join(&self, corpus: &Corpus, t: f64) -> Result<HmjOutput, JobError> {
        assert!((0.0..1.0).contains(&t), "threshold must be in [0, 1)");
        let mut report = SimReport::new();
        let n = corpus.len();
        let string_ids: Vec<u32> = (0..n as u32).collect();

        // Sample centroids (records themselves, as in ClusterJoin).
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut sample = string_ids.clone();
        sample.shuffle(&mut rng);
        let centroids: Vec<u32> = sample
            .into_iter()
            .take(self.cfg.num_centroids.min(n.max(1)))
            .collect();
        if centroids.is_empty() {
            return Ok(HmjOutput {
                pairs: Vec::new(),
                report,
                dnf: false,
            });
        }
        let centroid_tokens: Vec<Vec<&str>> = centroids
            .iter()
            .map(|&c| corpus.token_texts(StringId(c)))
            .collect();

        let cfg = self.cfg;
        let budget = AtomicU64::new(0);
        let over_budget = |spent: u64| cfg.max_distance_computations.is_some_and(|cap| spent > cap);
        // ---- Single pipeline job: partition (map) + verify (reduce) -----
        // One-stage job graph: under a bounded ShuffleConfig the verified
        // pairs stream through a runtime-side run file and cross into
        // driver memory only at `collect`.
        let job = self.cluster.input_vec(string_ids).map_reduce(
            "hmj.partition_verify",
            |&sid, e: &mut Emitter<u32, Replica>| {
                let spent = budget.fetch_add(centroid_tokens.len() as u64, Ordering::Relaxed);
                if over_budget(spent) {
                    return; // DNF: stop burning work
                }
                let tokens = corpus.token_texts(StringId(sid));
                // The expensive part: distance to EVERY centroid.
                let dists: Vec<f64> = centroid_tokens.iter().map(|c| nsld(&tokens, c)).collect();
                e.add_counter("distance_computations", dists.len() as u64);
                e.add_work(10 * dists.len() as u64); // NSLD per centroid
                let (home, best) = dists
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, d)| (i as u32, *d))
                    .expect("at least one centroid");
                // General filter: replicate within the 2T margin.
                for (p, d) in dists.iter().enumerate() {
                    if d - best <= 2.0 * t {
                        e.emit(
                            p as u32,
                            Replica {
                                sid,
                                home,
                                dist_to_centroid: *d,
                            },
                        );
                        e.add_counter("replicas", 1);
                    }
                }
            },
            |&partition, replicas: Vec<Replica>, out: &mut OutputSink<MetricPair>| {
                verify_partition(corpus, partition, replicas, t, &cfg, 0, out, &budget);
            },
        )?;
        let (output, job_report) = job.collect()?;
        report.extend(job_report);

        let dnf = over_budget(budget.load(Ordering::Relaxed));
        let mut pairs = if dnf { Vec::new() } else { output };
        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        Ok(HmjOutput { pairs, report, dnf })
    }
}

/// Verifies one partition: window-pruned all-pairs, or recursive
/// sub-partitioning when oversized.
#[allow(clippy::too_many_arguments)]
fn verify_partition(
    corpus: &Corpus,
    partition: u32,
    mut replicas: Vec<Replica>,
    t: f64,
    cfg: &HmjConfig,
    depth: usize,
    out: &mut OutputSink<MetricPair>,
    budget: &AtomicU64,
) {
    let over_budget = |spent: u64| cfg.max_distance_computations.is_some_and(|cap| spent > cap);
    if over_budget(budget.load(Ordering::Relaxed)) {
        return; // DNF: the join has already been declared dead
    }
    if replicas.len() <= cfg.max_partition_size || depth >= cfg.max_depth {
        // Window prune on distance-to-centroid (triangle inequality):
        // sort, then only compare within a ±t window.
        replicas.sort_unstable_by(|a, b| a.dist_to_centroid.total_cmp(&b.dist_to_centroid));
        let mut emitted: HashSet<(u32, u32), FxBuildHasher> = HashSet::default();
        for i in 0..replicas.len() {
            let ri = replicas[i];
            for rj in replicas.iter().skip(i + 1) {
                if rj.dist_to_centroid - ri.dist_to_centroid > t {
                    break; // sorted: everything further is out of window
                }
                if ri.sid == rj.sid {
                    continue; // the same record replicated twice upstream
                }
                // Symmetry/dedup: this partition is responsible only for
                // pairs whose smaller home is this partition.
                if ri.home.min(rj.home) != partition {
                    continue;
                }
                let key = if ri.sid < rj.sid {
                    (ri.sid, rj.sid)
                } else {
                    (rj.sid, ri.sid)
                };
                if !emitted.insert(key) {
                    continue;
                }
                if over_budget(budget.fetch_add(1, Ordering::Relaxed)) {
                    return;
                }
                out.add_counter("pairs_compared", 1);
                out.add_work(10); // one NSLD verification
                let ta = corpus.token_texts(StringId(key.0));
                let tb = corpus.token_texts(StringId(key.1));
                if let Some(d) = nsld_within(&ta, &tb, t, Aligning::Hungarian) {
                    out.emit(MetricPair {
                        a: key.0,
                        b: key.1,
                        dist: d,
                    });
                }
            }
        }
        return;
    }

    // Oversized: recursive repartition with sub-centroids [68]. Runs
    // inside this reducer — the straggler behaviour the paper observes.
    let k = (replicas.len() / cfg.max_partition_size + 2).min(replicas.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (u64::from(partition) << 32) ^ depth as u64);
    let mut sample = replicas.clone();
    sample.shuffle(&mut rng);
    let sub_centroids: Vec<u32> = sample.iter().take(k).map(|r| r.sid).collect();
    let sub_tokens: Vec<Vec<&str>> = sub_centroids
        .iter()
        .map(|&c| corpus.token_texts(StringId(c)))
        .collect();

    let mut sub_parts: Vec<Vec<Replica>> = vec![Vec::new(); k];
    for r in &replicas {
        if over_budget(budget.fetch_add(sub_tokens.len() as u64, Ordering::Relaxed)) {
            return;
        }
        let tokens = corpus.token_texts(StringId(r.sid));
        let dists: Vec<f64> = sub_tokens.iter().map(|c| nsld(&tokens, c)).collect();
        out.add_counter("distance_computations", dists.len() as u64);
        out.add_work(10 * dists.len() as u64); // NSLD per sub-centroid
        let best = dists.iter().copied().fold(f64::INFINITY, f64::min);
        for (p, d) in dists.iter().enumerate() {
            if d - best <= 2.0 * t {
                sub_parts[p].push(Replica {
                    sid: r.sid,
                    home: r.home,
                    dist_to_centroid: *d,
                });
            }
        }
    }
    // Sub-partition responsibility: dedupe pairs replicated into several
    // sub-partitions by letting only the record pair's first shared
    // sub-partition emit. A per-recursion hash set keeps this local.
    let mut emitted: HashSet<(u32, u32), FxBuildHasher> = HashSet::default();
    for sub in sub_parts {
        let mut local: OutputSink<MetricPair> = OutputSink::new();
        verify_partition(
            corpus,
            partition,
            sub,
            t,
            cfg,
            depth + 1,
            &mut local,
            budget,
        );
        out.add_work(local.work_units());
        let (pairs, counters) = local.into_parts();
        for (name, delta) in counters {
            out.add_counter(name, delta);
        }
        for p in pairs {
            if emitted.insert((p.a, p.b)) {
                out.emit(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tokenize::NameTokenizer;

    fn corpus(strings: &[&str]) -> Corpus {
        Corpus::build(strings, &NameTokenizer::default())
    }

    fn brute(c: &Corpus, t: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..c.len() as u32 {
            for j in i + 1..c.len() as u32 {
                let ta = c.token_texts(StringId(i));
                let tb = c.token_texts(StringId(j));
                if nsld(&ta, &tb) <= t {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_small() {
        let c = corpus(&[
            "barak obama",
            "barak obamma",
            "burak ubama",
            "chan kalan",
            "chank alan",
            "maria garcia",
            "mariah garcia",
            "wei chen",
            "wei chan",
            "jon smith",
        ]);
        let cluster = Cluster::with_machines(8);
        for t in [0.1, 0.2, 0.3] {
            let got: Vec<(u32, u32)> = HmjJoiner::new(
                &cluster,
                HmjConfig {
                    num_centroids: 3,
                    max_partition_size: 4,
                    ..HmjConfig::default()
                },
            )
            .self_join(&c, t)
            .unwrap()
            .pairs
            .iter()
            .map(|p| (p.a, p.b))
            .collect();
            assert_eq!(got, brute(&c, t), "t={t}");
        }
    }

    #[test]
    fn empty_corpus() {
        let c = corpus(&[]);
        let cluster = Cluster::with_machines(4);
        let out = HmjJoiner::new(&cluster, HmjConfig::default())
            .self_join(&c, 0.1)
            .unwrap();
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn counts_distance_computations() {
        let c = corpus(&["a b", "a c", "d e", "f g"]);
        let cluster = Cluster::with_machines(4);
        let out = HmjJoiner::new(
            &cluster,
            HmjConfig {
                num_centroids: 2,
                ..HmjConfig::default()
            },
        )
        .self_join(&c, 0.2)
        .unwrap();
        // Partitioning alone costs n × centroids distance computations.
        assert!(out.report.counter("distance_computations") >= 8);
    }
}
