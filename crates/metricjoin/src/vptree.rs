//! Vantage-point tree: K-nearest-neighbour and range queries over any
//! metric.
//!
//! The paper proves NSLD is a metric (Theorem 2) precisely so that it "can
//! be leveraged in all flavors of K-nearest-neighbor queries on metric
//! spaces" (Sec. II). This module delivers that capability: a classic
//! VP-tree whose correctness rests on the triangle inequality — the same
//! property the HMJ partitioning uses — so it works for NSLD, NLD, or any
//! other metric the workspace defines.
//!
//! Pruning rule: with vantage point `v`, radius `μ` (median distance), and
//! current best bound `τ`, the inside subtree can be skipped when
//! `d(q, v) − τ > μ` and the outside subtree when `d(q, v) + τ < μ`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A VP-tree over items of type `T` under a caller-supplied metric.
///
/// Build once with [`VpTree::build`]; query with [`VpTree::k_nearest`] or
/// [`VpTree::within`]. The metric **must** satisfy the metric axioms —
/// with a non-metric "distance" (FMS, SoftTfIdf, the fuzzy set measures)
/// the triangle-inequality pruning silently drops true neighbours, which
/// is exactly why the paper insists on metricity.
pub struct VpTree<T, D>
where
    D: Fn(&T, &T) -> f64,
{
    items: Vec<T>,
    root: Option<Box<Node>>,
    dist: D,
}

struct Node {
    /// Index into `items` of this node's vantage point.
    vantage: usize,
    /// Median distance separating inside from outside.
    radius: f64,
    inside: Option<Box<Node>>,
    outside: Option<Box<Node>>,
}

/// Max-heap entry for k-NN search (largest distance on top).
struct HeapEntry {
    dist: f64,
    item: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.item == other.item
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.item.cmp(&other.item))
    }
}

impl<T, D> VpTree<T, D>
where
    D: Fn(&T, &T) -> f64,
{
    /// Builds a tree over `items` under `dist`. `O(n log n)` expected
    /// distance evaluations.
    pub fn build(items: Vec<T>, dist: D) -> Self {
        let mut ids: Vec<usize> = (0..items.len()).collect();
        let root = Self::build_node(&items, &dist, &mut ids);
        Self { items, root, dist }
    }

    fn build_node(items: &[T], dist: &D, ids: &mut [usize]) -> Option<Box<Node>> {
        let (&vantage, rest) = ids.split_first()?;
        if rest.is_empty() {
            return Some(Box::new(Node {
                vantage,
                radius: 0.0,
                inside: None,
                outside: None,
            }));
        }
        // Median-of-distances split around the vantage point.
        let mut with_d: Vec<(f64, usize)> = rest
            .iter()
            .map(|&i| ((dist)(&items[vantage], &items[i]), i))
            .collect();
        let mid = with_d.len() / 2;
        with_d.select_nth_unstable_by(mid, |a, b| a.0.total_cmp(&b.0));
        let radius = with_d[mid].0;
        let mut inside: Vec<usize> = Vec::with_capacity(mid + 1);
        let mut outside: Vec<usize> = Vec::with_capacity(with_d.len() - mid);
        for (d, i) in with_d {
            if d < radius {
                inside.push(i);
            } else {
                outside.push(i);
            }
        }
        Some(Box::new(Node {
            vantage,
            radius,
            inside: Self::build_node(items, dist, &mut inside),
            outside: Self::build_node(items, dist, &mut outside),
        }))
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The `k` nearest items to `query`, as `(item_index, distance)` sorted
    /// by ascending distance (ties broken by index).
    pub fn k_nearest(&self, query: &T, k: usize) -> Vec<(usize, f64)> {
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        if k > 0 {
            self.search(self.root.as_deref(), query, k, &mut heap);
        }
        let mut out: Vec<(usize, f64)> = heap.into_iter().map(|e| (e.item, e.dist)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn search(&self, node: Option<&Node>, query: &T, k: usize, heap: &mut BinaryHeap<HeapEntry>) {
        let Some(node) = node else { return };
        let d = (self.dist)(query, &self.items[node.vantage]);
        if heap.len() < k {
            heap.push(HeapEntry {
                dist: d,
                item: node.vantage,
            });
        } else if d < heap.peek().expect("non-empty").dist {
            heap.pop();
            heap.push(HeapEntry {
                dist: d,
                item: node.vantage,
            });
        }
        let tau = if heap.len() < k {
            f64::INFINITY
        } else {
            heap.peek().expect("non-empty").dist
        };
        // Descend the side the query falls in first; prune the other with
        // the triangle inequality.
        if d < node.radius {
            self.search(node.inside.as_deref(), query, k, heap);
            let tau = heap.peek().map_or(f64::INFINITY, |e| e.dist);
            if heap.len() < k || d + tau >= node.radius {
                self.search(node.outside.as_deref(), query, k, heap);
            }
        } else {
            self.search(node.outside.as_deref(), query, k, heap);
            let tau = heap.peek().map_or(f64::INFINITY, |e| e.dist);
            if heap.len() < k || d - tau <= node.radius {
                self.search(node.inside.as_deref(), query, k, heap);
            }
        }
        let _ = tau;
    }

    /// All items within `radius` of `query` (inclusive), sorted by
    /// ascending distance.
    pub fn within(&self, query: &T, radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.range_search(self.root.as_deref(), query, radius, &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn range_search(
        &self,
        node: Option<&Node>,
        query: &T,
        radius: f64,
        out: &mut Vec<(usize, f64)>,
    ) {
        let Some(node) = node else { return };
        let d = (self.dist)(query, &self.items[node.vantage]);
        if d <= radius {
            out.push((node.vantage, d));
        }
        if d - radius < node.radius {
            self.range_search(node.inside.as_deref(), query, radius, out);
        }
        if d + radius >= node.radius {
            self.range_search(node.outside.as_deref(), query, radius, out);
        }
    }

    /// Borrow an indexed item.
    pub fn item(&self, index: usize) -> &T {
        &self.items[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_setdist::nsld;

    // `&Vec<String>` because `VpTree::build` wants `Fn(&T, &T)`.
    #[allow(clippy::ptr_arg)]
    fn name_dist(a: &Vec<String>, b: &Vec<String>) -> f64 {
        nsld(a, b)
    }

    fn tokenize_all(names: &[&str]) -> Vec<Vec<String>> {
        names
            .iter()
            .map(|n| n.split_whitespace().map(str::to_owned).collect())
            .collect()
    }

    fn brute_knn(items: &[Vec<String>], q: &Vec<String>, k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = items
            .iter()
            .enumerate()
            .map(|(i, x)| (i, name_dist(q, x)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = tokenize_all(&[
            "barak obama",
            "barak obamma",
            "burak ubama",
            "chan kalan",
            "chank alan",
            "maria garcia",
            "mariah garcia",
            "wei chen",
            "jon smith",
            "jonathan smyth",
        ]);
        let tree = VpTree::build(items.clone(), name_dist);
        for q_raw in ["barak obama", "chan kalan", "zzz qqq"] {
            let q: Vec<String> = q_raw.split_whitespace().map(str::to_owned).collect();
            for k in [1, 3, 10, 15] {
                let got = tree.k_nearest(&q, k);
                let expect = brute_knn(&items, &q, k);
                assert_eq!(got.len(), expect.len().min(items.len()));
                // Distance profiles must agree exactly; items tied at the
                // k-th distance may legitimately differ.
                let got_d: Vec<f64> = got.iter().map(|(_, d)| *d).collect();
                let expect_d: Vec<f64> = expect.iter().map(|(_, d)| *d).collect();
                assert_eq!(got_d, expect_d, "q={q_raw} k={k}");
                for (i, d) in &got {
                    assert!((name_dist(&q, &items[*i]) - d).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn range_query_matches_brute_force() {
        let items = tokenize_all(&[
            "barak obama",
            "barak obamma",
            "burak ubama",
            "chan kalan",
            "chank alan",
            "maria garcia",
        ]);
        let tree = VpTree::build(items.clone(), name_dist);
        let q: Vec<String> = vec!["barak".into(), "obama".into()];
        for radius in [0.0, 0.1, 0.25, 0.6, 1.0] {
            let got = tree.within(&q, radius);
            let expect: Vec<(usize, f64)> = {
                let mut v: Vec<(usize, f64)> = items
                    .iter()
                    .enumerate()
                    .map(|(i, x)| (i, name_dist(&q, x)))
                    .filter(|(_, d)| *d <= radius)
                    .collect();
                v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                v
            };
            assert_eq!(got, expect, "radius={radius}");
        }
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree: VpTree<Vec<String>, _> = VpTree::build(vec![], name_dist);
        assert!(tree.is_empty());
        assert!(tree.k_nearest(&vec!["x".to_owned()], 3).is_empty());

        let one = VpTree::build(tokenize_all(&["solo act"]), name_dist);
        let res = one.k_nearest(&vec!["solo".to_owned(), "act".to_owned()], 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0], (0, 0.0));
    }

    #[test]
    fn k_zero_returns_nothing() {
        let tree = VpTree::build(tokenize_all(&["a b", "c d"]), name_dist);
        assert!(tree.k_nearest(&vec!["a".to_owned()], 0).is_empty());
    }
}
