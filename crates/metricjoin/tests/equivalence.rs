//! HMJ must produce exactly the same result set as TSJ's
//! fuzzy-token-matching (both are exact NSLD joins) — they differ only in
//! *how much work* it takes, which is the subject of Fig. 7.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsj::{brute_force_self_join, pair_set};
use tsj_datagen::{generate_names, plant_rings, NameGenConfig, RingConfig};
use tsj_mapreduce::Cluster;
use tsj_metricjoin::{HmjConfig, HmjJoiner};
use tsj_tokenize::{Corpus, NameTokenizer};

#[test]
fn hmj_equals_brute_force_on_workload() {
    let mut rng = StdRng::seed_from_u64(71);
    let mut strings = generate_names(150, &mut rng, &NameGenConfig::default());
    plant_rings(&mut strings, 10, &mut rng, &RingConfig::default());
    let corpus = Corpus::build(&strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(16);

    for t in [0.1, 0.2] {
        let truth = pair_set(&brute_force_self_join(&corpus, t, 4));
        let hmj: std::collections::HashSet<(u32, u32), tsj_mapreduce::FxBuildHasher> =
            HmjJoiner::new(
                &cluster,
                HmjConfig {
                    num_centroids: 8,
                    max_partition_size: 16,
                    ..HmjConfig::default()
                },
            )
            .self_join(&corpus, t)
            .unwrap()
            .pairs
            .iter()
            .map(|p| (p.a, p.b))
            .collect();
        assert_eq!(hmj, truth, "t = {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hmj_equals_brute_force_random(
        seed in 0u64..5_000,
        t in 0.05f64..0.3,
        centroids in 1usize..12,
        max_part in 2usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut strings = generate_names(35, &mut rng, &NameGenConfig::default());
        plant_rings(&mut strings, 3, &mut rng, &RingConfig::default());
        let corpus = Corpus::build(&strings, &NameTokenizer::default());
        let cluster = Cluster::with_machines(8);
        let truth = pair_set(&brute_force_self_join(&corpus, t, 4));
        let hmj: std::collections::HashSet<(u32, u32), tsj_mapreduce::FxBuildHasher> = HmjJoiner::new(
            &cluster,
            HmjConfig {
                num_centroids: centroids,
                max_partition_size: max_part,
                max_depth: 3,
                seed,
                max_distance_computations: None,
            },
        )
        .self_join(&corpus, t)
        .unwrap()
        .pairs
        .iter()
        .map(|p| (p.a, p.b))
        .collect();
        prop_assert_eq!(hmj, truth);
    }
}

#[test]
fn budget_exhaustion_reports_dnf() {
    let mut rng = StdRng::seed_from_u64(72);
    let strings = generate_names(200, &mut rng, &NameGenConfig::default());
    let corpus = Corpus::build(&strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(8);
    let out = HmjJoiner::new(
        &cluster,
        HmjConfig {
            num_centroids: 16,
            max_distance_computations: Some(100), // far below 200 × 16
            ..HmjConfig::default()
        },
    )
    .self_join(&corpus, 0.1)
    .unwrap();
    assert!(out.dnf, "a 100-distance budget cannot cover this join");
    assert!(
        out.pairs.is_empty(),
        "DNF joins must not leak partial results"
    );
    // And with no budget, the same join finishes.
    let ok = HmjJoiner::new(
        &cluster,
        HmjConfig {
            num_centroids: 16,
            ..HmjConfig::default()
        },
    )
    .self_join(&corpus, 0.1)
    .unwrap();
    assert!(!ok.dnf);
}
