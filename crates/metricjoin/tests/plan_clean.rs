//! Pin: the shipped HMJ partition+verify graph analyzes with zero plan
//! diagnostics, under `PlanCheck::Deny` so a regression fails the join
//! instead of warning. (TSJ and MassJoin have the same pin in
//! `crates/core/tests/plan_clean.rs`.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsj_datagen::{generate_names, plant_rings, NameGenConfig, RingConfig};
use tsj_mapreduce::{Cluster, PlanCheck, ShuffleConfig};
use tsj_metricjoin::{HmjConfig, HmjJoiner};
use tsj_tokenize::{Corpus, NameTokenizer};

#[test]
fn hmj_pipeline_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut strings = generate_names(120, &mut rng, &NameGenConfig::default());
    plant_rings(&mut strings, 8, &mut rng, &RingConfig::default());
    let corpus = Corpus::build(&strings, &NameTokenizer::default());

    // Pin ShuffleConfig::default() so CI's TSJ_* env knobs cannot change
    // the analyzed graph; Deny turns any diagnostic into a hard failure.
    let cluster = Cluster::with_machines(8)
        .with_shuffle_config(ShuffleConfig::default())
        .with_plan_check(PlanCheck::Deny);
    let out = HmjJoiner::new(&cluster, HmjConfig::default())
        .self_join(&corpus, 0.15)
        .expect("shipped HMJ graph must analyze clean");
    assert!(
        out.report.plan_diagnostics().is_empty(),
        "{:?}",
        out.report.plan_diagnostics()
    );
    assert!(!out.pairs.is_empty(), "workload has planted rings");
}
