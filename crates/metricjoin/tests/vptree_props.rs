//! Property tests: the VP-tree is exact under a true metric — every k-NN
//! and range query equals brute force, for arbitrary token multisets.

use proptest::prelude::*;
use tsj_metricjoin::VpTree;
use tsj_setdist::nsld;

// `&Vec<String>` (not `&[String]`) because `VpTree::build` wants
// `Fn(&T, &T)` with `T = Vec<String>`.
#[allow(clippy::ptr_arg)]
fn dist(a: &Vec<String>, b: &Vec<String>) -> f64 {
    nsld(a, b)
}

fn multiset() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(proptest::string::string_regex("[ab]{1,5}").unwrap(), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_is_exact(items in proptest::collection::vec(multiset(), 1..30),
                    query in multiset(),
                    k in 1usize..8) {
        let tree = VpTree::build(items.clone(), dist);
        let got = tree.k_nearest(&query, k);
        let mut expect: Vec<(usize, f64)> = items
            .iter()
            .enumerate()
            .map(|(i, x)| (i, dist(&query, x)))
            .collect();
        expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        expect.truncate(k);
        // Sets of items tied at the k-th distance may legitimately differ;
        // the *distance profile* must be identical and every reported
        // distance must be genuine.
        let got_d: Vec<f64> = got.iter().map(|(_, d)| *d).collect();
        let expect_d: Vec<f64> = expect.iter().map(|(_, d)| *d).collect();
        prop_assert_eq!(got_d, expect_d);
        for (i, d) in &got {
            prop_assert!((dist(&query, &items[*i]) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn range_is_exact(items in proptest::collection::vec(multiset(), 1..30),
                      query in multiset(),
                      radius in 0.0f64..1.0) {
        let tree = VpTree::build(items.clone(), dist);
        let got = tree.within(&query, radius);
        let mut expect: Vec<(usize, f64)> = items
            .iter()
            .enumerate()
            .map(|(i, x)| (i, dist(&query, x)))
            .filter(|(_, d)| *d <= radius)
            .collect();
        expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        prop_assert_eq!(got, expect);
    }

    /// Indexed items always find themselves at distance zero.
    #[test]
    fn self_query_hits(items in proptest::collection::vec(multiset(), 1..20)) {
        let tree = VpTree::build(items.clone(), dist);
        for q in &items {
            let nn = tree.k_nearest(q, 1);
            prop_assert_eq!(nn.len(), 1);
            prop_assert_eq!(nn[0].1, 0.0);
        }
    }
}
