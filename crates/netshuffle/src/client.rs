//! The retrying fetch client.
//!
//! One [`FetchClient`] holds one lazily-opened connection to one server.
//! Every logical request ([`FetchClient::dir`] / [`FetchClient::fetch`])
//! runs under a per-request deadline and a retry budget: transport-level
//! failures (connect refusal, timeout, dropped connection, a frame that
//! does not decode) reconnect and retry after bounded exponential
//! backoff with jitter; definitive server answers (`NotFound`,
//! `RangeError`, ...) fail immediately. Retrying is safe because every
//! request is an idempotent read — a refetched range is the same bytes.
//!
//! Errors are structured ([`FetchError`]) and every path terminates: a
//! dead or stalled server costs `retry_budget + 1` bounded attempts and
//! then surfaces as [`FetchError::Exhausted`], never a hang or a panic.

use std::io::ErrorKind;
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, Request, Response, RunKey, RunSpec, MAX_FETCH_BYTES,
    MAX_RESPONSE_FRAME,
};
use crate::server::{connect, Conn, ServerAddr};

/// Client-side knobs. The defaults suit loopback CI traffic; a real
/// deployment would widen the deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Deadline for one request/response round trip (read and write).
    pub request_timeout: Duration,
    /// Extra attempts after the first failure. `0` means fail fast.
    pub retry_budget: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (deterministic per client).
    pub jitter_seed: u64,
    /// Largest single ranged read; bigger ranges are split by the
    /// caller. Must stay within the protocol's `MAX_FETCH_BYTES`.
    pub chunk: u64,
}

impl Default for FetchConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            retry_budget: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            jitter_seed: 0x5eed_f00d,
            chunk: 256 * 1024,
        }
    }
}

/// What the client observed, for the runtime's observability counters.
/// Wall-clock-class data: retries depend on timing and injected faults,
/// never on the job's logical content.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Logical requests issued (each counted once however many attempts
    /// it took).
    pub requests: u64,
    /// Extra attempts beyond the first, summed over all requests.
    pub retries: u64,
    /// Payload bytes successfully fetched (ranged-read responses only).
    pub bytes: u64,
}

/// Why a logical request failed.
#[derive(Debug)]
pub enum FetchError {
    /// A transport-level I/O failure (refused, reset, dropped).
    Io(std::io::Error),
    /// The per-request deadline elapsed.
    Timeout,
    /// The peer sent a frame that does not decode (or an oversized or
    /// truncated one).
    Protocol(String),
    /// The server does not know the requested `(job, partition, task)`.
    NotFound(RunKey),
    /// A definitive server-side refusal (`RangeError`, `BadRequest`, or
    /// `ServerError`) — retrying would return the same answer.
    Server(&'static str),
    /// The retry budget ran out; `last` is the final attempt's error.
    Exhausted {
        attempts: u32,
        last: Box<FetchError>,
    },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Io(e) => write!(f, "i/o failure: {e}"),
            FetchError::Timeout => write!(f, "request deadline elapsed"),
            FetchError::Protocol(what) => write!(f, "protocol violation: {what}"),
            FetchError::NotFound(key) => write!(
                f,
                "no runs registered for job {} partition {} task {}",
                key.job, key.partition, key.task
            ),
            FetchError::Server(what) => write!(f, "server refused: {what}"),
            FetchError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for FetchError {}

impl FetchError {
    /// Transport-level failures are worth another attempt; definitive
    /// server answers are not.
    fn is_retryable(&self) -> bool {
        matches!(
            self,
            FetchError::Io(_) | FetchError::Timeout | FetchError::Protocol(_)
        )
    }
}

/// A connection to one run server, with retries. Not `Sync`: each
/// fetching thread owns its own client (and thus its own socket).
#[derive(Debug)]
pub struct FetchClient {
    addr: ServerAddr,
    config: FetchConfig,
    conn: Option<Conn>,
    stats: FetchStats,
    jitter: u64,
}

impl FetchClient {
    /// A client for `addr`. Connects lazily on first use.
    pub fn new(addr: ServerAddr, config: FetchConfig) -> Self {
        Self {
            addr,
            config,
            conn: None,
            stats: FetchStats::default(),
            // Never zero: xorshift has a fixed point at 0.
            jitter: config.jitter_seed | 1,
        }
    }

    /// Everything observed so far.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }

    /// The run directory of one `(job, partition, task)`.
    pub fn dir(&mut self, key: RunKey) -> Result<Vec<RunSpec>, FetchError> {
        match self.request(&Request::Dir(key))? {
            Response::Dir(specs) => Ok(specs),
            Response::NotFound => Err(FetchError::NotFound(key)),
            other => Err(definitive(other)),
        }
    }

    /// One ranged read: exactly `len` bytes at `offset` of the run file
    /// behind `key`. The range must lie within a run the server's
    /// directory advertised.
    pub fn fetch(&mut self, key: RunKey, offset: u64, len: u64) -> Result<Vec<u8>, FetchError> {
        debug_assert!(len <= MAX_FETCH_BYTES);
        match self.request(&Request::Fetch { key, offset, len })? {
            Response::Fetch(bytes) => {
                if bytes.len() as u64 != len {
                    return Err(FetchError::Protocol(format!(
                        "ranged read returned {} bytes, requested {len}",
                        bytes.len()
                    )));
                }
                self.stats.bytes += len;
                Ok(bytes)
            }
            Response::NotFound => Err(FetchError::NotFound(key)),
            other => Err(definitive(other)),
        }
    }

    /// The retry loop around one logical request.
    fn request(&mut self, request: &Request) -> Result<Response, FetchError> {
        self.stats.requests += 1;
        let payload = request.encode();
        let mut last: Option<FetchError> = None;
        for attempt in 0..=self.config.retry_budget {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(self.backoff(attempt));
            }
            match self.attempt(&payload) {
                Ok(response) => return Ok(response),
                Err(err) => {
                    // A failed attempt leaves the stream in an unknown
                    // state; reconnect before the next try.
                    self.conn = None;
                    if !err.is_retryable() {
                        return Err(err);
                    }
                    last = Some(err);
                }
            }
        }
        Err(FetchError::Exhausted {
            attempts: self.config.retry_budget + 1,
            last: Box::new(last.unwrap_or(FetchError::Timeout)),
        })
    }

    /// One attempt: connect if needed, write the frame, read the reply.
    fn attempt(&mut self, payload: &[u8]) -> Result<Response, FetchError> {
        if self.conn.is_none() {
            let conn = connect(&self.addr, self.config.connect_timeout).map_err(io_error)?;
            conn.set_deadlines(self.config.request_timeout)
                .map_err(io_error)?;
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().ok_or(FetchError::Timeout)?;
        write_frame(conn, payload).map_err(io_error)?;
        match read_frame(conn, MAX_RESPONSE_FRAME).map_err(io_error)? {
            None => Err(FetchError::Io(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "server closed the connection before replying",
            ))),
            Some(frame) => Response::decode(&frame)
                .ok_or_else(|| FetchError::Protocol("undecodable response frame".into())),
        }
    }

    /// Exponential backoff with xorshift jitter: `base * 2^(attempt-1)`,
    /// capped, then scaled by a factor in `[0.5, 1.0]`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_cap);
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        // Scale by (512 + x % 512) / 1024 — i.e. a factor in [0.5, 1.0).
        exp.saturating_mul(512 + (x % 512) as u32) / 1024
    }
}

fn definitive(response: Response) -> FetchError {
    match response {
        Response::BadRequest => FetchError::Server("bad request"),
        Response::RangeError => FetchError::Server("range outside any registered run"),
        Response::ServerError => FetchError::Server("server-side read failure"),
        Response::Dir(_) | Response::Fetch(_) | Response::NotFound => {
            FetchError::Protocol("response kind does not match the request".into())
        }
    }
}

/// Timeouts come back from the socket layer as `WouldBlock` (Unix) or
/// `TimedOut` (Windows); everything else stays an I/O error.
fn io_error(err: std::io::Error) -> FetchError {
    match err.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FetchError::Timeout,
        _ => FetchError::Io(err),
    }
}
