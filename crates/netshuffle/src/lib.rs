//! Network shuffle: the piece that crosses the host boundary.
//!
//! The `tsj-mapreduce` runtime's spill-run wire format was designed so a
//! reducer needs only a run directory — `(offset, bytes, records)` per
//! run — over *any* byte stream to consume a map task's output. This
//! crate supplies that byte stream:
//!
//! * [`RunServer`] — a small blocking run server (TCP on loopback or any
//!   interface, with a Unix-domain-socket mode for tests) that each
//!   worker process runs. It serves runs published to a shared
//!   [`Registry`] by `(job, partition, task)` via a length-prefixed
//!   request/response protocol ([`protocol`]) with **ranged reads**:
//!   every fetch is a positioned read of exactly the requested
//!   `(offset, len)` range of the run file — the server never buffers a
//!   whole run.
//! * [`FetchClient`] — the reduce-side client: per-request deadlines,
//!   bounded exponential backoff with jitter, a retry budget, and
//!   structured [`FetchError`]s instead of panics or hangs.
//! * [`FaultConfig`] — a deterministic server-side fault-injection layer
//!   (drop every n-th request, stall each request) so the retry path is
//!   exercised by tests and CI rather than only by real network weather.
//!
//! Retries are safe by construction: a ranged read is idempotent, so a
//! dropped connection or timeout refetches the same bytes and the
//! assembled run is identical — faults change timing and the retry
//! counters, never data.
//!
//! This crate is deliberately standalone (std only, no dependency on the
//! runtime): it moves opaque byte ranges and run directories. The
//! `tsj-mapreduce` `Transport::Remote` glue owns the mapping between
//! spill-format runs and the `(job, partition, task)` keyspace.
//!
//! Timing note: deadlines, backoff, and stall injection are real-time by
//! design — this crate lives outside the runtime's deterministic
//! planning/merge modules (see the `tsj-lint` scope notes).

mod client;
pub mod protocol;
mod server;

pub use client::{FetchClient, FetchConfig, FetchError, FetchStats};
pub use protocol::{read_frame, write_frame, Request, Response, RunKey, RunSpec};
pub use server::{PublishedTask, Registry, RunServer, ServerAddr};

/// Deterministic server-side fault injection: exercised by tests and the
/// `remote-shuffle` CI job via `TSJ_NET_FAULT_DROP_NTH` /
/// `TSJ_NET_FAULT_STALL_US` (parsed by the runtime's config layer).
///
/// The default (all zeros) injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Drop (close without replying) every n-th request the server
    /// receives, counted across all connections. `0` disables.
    pub drop_nth: u64,
    /// Sleep this many microseconds before serving each request —
    /// simulated network latency (or, past the client's deadline, a
    /// stalled peer). `0` disables.
    pub stall_us: u64,
    /// Phase seed for the drop counter: with `drop_nth = n`, the first
    /// drop happens on request `n - (seed % n)`, so sweeps can shift
    /// which requests fail without changing the failure rate.
    pub seed: u64,
}

impl FaultConfig {
    /// True when any injection is configured.
    pub fn is_active(&self) -> bool {
        self.drop_nth > 0 || self.stall_us > 0
    }
}
