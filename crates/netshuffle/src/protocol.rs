//! The run-fetch wire protocol: length-prefixed request/response frames.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload. Payloads use fixed little-endian integers (a
//! handful of bytes per request — unlike the spill-run record format,
//! framing overhead is irrelevant here, and fixed offsets make truncation
//! and corruption tests exact).
//!
//! ```text
//! request  := op:u8 job:u64 partition:u32 task:u64 [offset:u64 len:u64]
//!             op 1 = Dir   (no range)   — the run directory of one
//!                                         (job, partition, task)
//!             op 2 = Fetch (with range) — raw bytes of a subrange of one
//!                                         registered run
//! response := status:u8 body
//!             status 0 = Dir      body = count:u32 then count ×
//!                                        (offset:u64 bytes:u64 records:u64)
//!             status 1 = Fetch    body = the raw range bytes
//!             status 2 = NotFound     (unknown job/task or partition)
//!             status 3 = BadRequest   (malformed request payload)
//!             status 4 = RangeError   (range outside every registered run,
//!                                      or larger than MAX_FETCH_BYTES)
//!             status 5 = ServerError  (I/O error reading the run file)
//! ```
//!
//! Frame lengths are bounded on both sides ([`MAX_REQUEST_FRAME`],
//! [`MAX_RESPONSE_FRAME`]): a corrupt length prefix is rejected before
//! any allocation, so garbage on the socket costs one connection, never
//! memory.

use std::io::{Read, Write};

/// Largest request payload the server accepts (a Fetch is 37 bytes; the
/// slack keeps room for protocol evolution without inviting garbage).
pub const MAX_REQUEST_FRAME: usize = 256;

/// Hard cap on one ranged read. Clients chunk larger runs; the server
/// answers anything above this with `RangeError` instead of allocating.
pub const MAX_FETCH_BYTES: u64 = 4 * 1024 * 1024;

/// Largest response payload a client accepts: a full fetch chunk, or a
/// run directory (24 bytes per run — this bounds runs per directory far
/// above any real spill count).
pub const MAX_RESPONSE_FRAME: usize = MAX_FETCH_BYTES as usize + 64;

/// Addresses one map task's runs for one reduce partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// The job (stage) the runs belong to.
    pub job: u64,
    /// The reduce partition.
    pub partition: u32,
    /// The producing map task (attempt-distinct under speculation).
    pub task: u64,
}

/// One run's location in its task's exchange file — the transportable
/// form of the runtime's `RunMeta`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSpec {
    /// Byte offset of the run's first record frame.
    pub offset: u64,
    /// Total framed bytes of the run.
    pub bytes: u64,
    /// Records in the run.
    pub records: u64,
}

/// A client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// The run directory of one `(job, partition, task)`.
    Dir(RunKey),
    /// A ranged read: `len` bytes at `offset` of the key's run file. The
    /// range must fall inside a single registered run.
    Fetch { key: RunKey, offset: u64, len: u64 },
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The requested run directory (possibly empty: the task produced
    /// nothing for this partition).
    Dir(Vec<RunSpec>),
    /// The requested range's bytes.
    Fetch(Vec<u8>),
    /// No such `(job, task)` published, or the partition is out of range.
    NotFound,
    /// The request payload did not decode.
    BadRequest,
    /// The fetch range lies outside every registered run (or exceeds
    /// [`MAX_FETCH_BYTES`]).
    RangeError,
    /// The server failed reading the run file.
    ServerError,
}

const OP_DIR: u8 = 1;
const OP_FETCH: u8 = 2;

const ST_DIR: u8 = 0;
const ST_FETCH: u8 = 1;
const ST_NOT_FOUND: u8 = 2;
const ST_BAD_REQUEST: u8 = 3;
const ST_RANGE_ERROR: u8 = 4;
const ST_SERVER_ERROR: u8 = 5;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_le_bytes(*head))
}

fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_le_bytes(*head))
}

fn put_key(out: &mut Vec<u8>, key: RunKey) {
    put_u64(out, key.job);
    put_u32(out, key.partition);
    put_u64(out, key.task);
}

fn get_key(buf: &mut &[u8]) -> Option<RunKey> {
    Some(RunKey {
        job: get_u64(buf)?,
        partition: get_u32(buf)?,
        task: get_u64(buf)?,
    })
}

impl Request {
    /// Encodes the request payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        match *self {
            Request::Dir(key) => {
                out.push(OP_DIR);
                put_key(&mut out, key);
            }
            Request::Fetch { key, offset, len } => {
                out.push(OP_FETCH);
                put_key(&mut out, key);
                put_u64(&mut out, offset);
                put_u64(&mut out, len);
            }
        }
        out
    }

    /// Decodes a request payload; `None` on any malformation (unknown op,
    /// truncation, trailing garbage).
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let (&op, mut buf) = payload.split_first()?;
        let req = match op {
            OP_DIR => Request::Dir(get_key(&mut buf)?),
            OP_FETCH => Request::Fetch {
                key: get_key(&mut buf)?,
                offset: get_u64(&mut buf)?,
                len: get_u64(&mut buf)?,
            },
            _ => return None,
        };
        buf.is_empty().then_some(req)
    }
}

impl Response {
    /// Encodes the response payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Dir(specs) => {
                // A run directory lists one spec per reduce partition;
                // partition counts are far below u32::MAX, and a count
                // that somehow is not would corrupt the frame if
                // truncated — refuse loudly instead.
                let count =
                    u32::try_from(specs.len()).expect("dir spec count exceeds the u32 wire field");
                let mut out = Vec::with_capacity(5 + specs.len() * 24);
                out.push(ST_DIR);
                put_u32(&mut out, count);
                for s in specs {
                    put_u64(&mut out, s.offset);
                    put_u64(&mut out, s.bytes);
                    put_u64(&mut out, s.records);
                }
                out
            }
            Response::Fetch(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(ST_FETCH);
                out.extend_from_slice(bytes);
                out
            }
            Response::NotFound => vec![ST_NOT_FOUND],
            Response::BadRequest => vec![ST_BAD_REQUEST],
            Response::RangeError => vec![ST_RANGE_ERROR],
            Response::ServerError => vec![ST_SERVER_ERROR],
        }
    }

    /// Decodes a response payload; `None` on any malformation (unknown
    /// status, truncated directory, count/length mismatch).
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let (&status, mut buf) = payload.split_first()?;
        match status {
            ST_DIR => {
                let count = get_u32(&mut buf)? as usize;
                if buf.len() != count * 24 {
                    return None;
                }
                let mut specs = Vec::with_capacity(count);
                for _ in 0..count {
                    specs.push(RunSpec {
                        offset: get_u64(&mut buf)?,
                        bytes: get_u64(&mut buf)?,
                        records: get_u64(&mut buf)?,
                    });
                }
                Some(Response::Dir(specs))
            }
            ST_FETCH => Some(Response::Fetch(buf.to_vec())),
            ST_NOT_FOUND => buf.is_empty().then_some(Response::NotFound),
            ST_BAD_REQUEST => buf.is_empty().then_some(Response::BadRequest),
            ST_RANGE_ERROR => buf.is_empty().then_some(Response::RangeError),
            ST_SERVER_ERROR => buf.is_empty().then_some(Response::ServerError),
            _ => None,
        }
    }
}

/// Writes one frame (length prefix + payload) and flushes. The prefix
/// and payload go out as a *single* write: two small writes on a TCP
/// stream would let Nagle hold the payload until the peer's delayed ACK
/// (~40ms per round trip — three orders of magnitude over loopback
/// latency).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame payload of {} bytes exceeds the u32 length prefix",
                payload.len()
            ),
        )
    })?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads until `buf` is full or EOF; returns the bytes read. Unlike
/// `read_exact`, a clean EOF at a frame boundary is distinguishable (0
/// bytes read) from mid-frame truncation.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(filled)
}

/// Reads one frame. `Ok(None)` is a clean EOF before any byte (the peer
/// closed between frames); truncation mid-frame and length prefixes over
/// `max` are errors.
pub fn read_frame(r: &mut impl Read, max: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame length prefix",
            ))
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload)? != len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed inside a frame payload",
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> RunKey {
        RunKey {
            job: 7,
            partition: 3,
            task: 1 << 21,
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Dir(key()),
            Request::Fetch {
                key: key(),
                offset: u64::MAX - 1,
                len: 4096,
            },
        ] {
            assert_eq!(Request::decode(&req.encode()), Some(req));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let specs = vec![
            RunSpec {
                offset: 0,
                bytes: 10,
                records: 3,
            },
            RunSpec {
                offset: 10,
                bytes: 999,
                records: 100,
            },
        ];
        for resp in [
            Response::Dir(Vec::new()),
            Response::Dir(specs),
            Response::Fetch(vec![1, 2, 3]),
            Response::Fetch(Vec::new()),
            Response::NotFound,
            Response::BadRequest,
            Response::RangeError,
            Response::ServerError,
        ] {
            assert_eq!(Response::decode(&resp.encode()), Some(resp.clone()));
        }
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[99, 0, 0]), None);
        // Truncated Dir request.
        let mut enc = Request::Dir(key()).encode();
        enc.pop();
        assert_eq!(Request::decode(&enc), None);
        // Trailing garbage.
        let mut enc = Request::Dir(key()).encode();
        enc.push(0);
        assert_eq!(Request::decode(&enc), None);
        // Directory whose count disagrees with its length.
        let mut enc = Response::Dir(vec![RunSpec::default()]).encode();
        enc.pop();
        assert_eq!(Response::decode(&enc), None);
        assert_eq!(Response::decode(&[ST_NOT_FOUND, 1]), None);
        assert_eq!(Response::decode(&[200]), None);
    }

    #[test]
    fn frames_roundtrip_and_bound_length() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r, 64).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r, 64).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r, 64).unwrap(), None);

        // A corrupt (oversized) length prefix is rejected before allocation.
        let huge = u32::MAX.to_le_bytes();
        let err = read_frame(&mut huge.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Truncation inside the prefix and inside the payload both error.
        let err = read_frame(&mut [1u8, 0].as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(6);
        let err = read_frame(&mut wire.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
