//! The blocking run server: serves registered runs over TCP or a Unix
//! domain socket.
//!
//! One accept thread per server; one (detached) thread per connection.
//! Connections are request/response loops over [`crate::protocol`]
//! frames: `Dir` answers from the in-memory [`Registry`], `Fetch`
//! answers with a positioned read of exactly the requested range —
//! the server holds no per-connection state beyond a fixed read buffer
//! and never materializes a whole run.
//!
//! Malformed traffic is contained: a frame that does not decode gets
//! `BadRequest`; a corrupt length prefix or mid-frame truncation costs
//! that one connection. Connection threads carry read/write deadlines
//! ([`CONN_IDLE_TIMEOUT`]) so an idle or wedged peer cannot pin a thread
//! forever, and they re-check the shutdown flag between requests.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, Request, Response, RunKey, RunSpec, MAX_FETCH_BYTES, MAX_REQUEST_FRAME,
};
use crate::FaultConfig;

/// How long a connection thread will wait on a quiet peer before hanging
/// up. Generous — it exists to bound thread lifetime, not to police
/// latency (that is the client's deadline).
pub const CONN_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// One published map task: its exchange file (if it produced any bytes)
/// and each partition's run directory within it.
#[derive(Debug, Clone)]
pub struct PublishedTask {
    /// The task's run file, opened read-only; `None` when the task
    /// produced no records at all (every partition's directory is empty).
    pub file: Option<Arc<File>>,
    /// Partition-indexed run directories.
    pub parts: Vec<Vec<RunSpec>>,
}

/// The servable-run registry a [`RunServer`] answers from. Map tasks
/// publish into it the moment they finish; the server only ever reads.
#[derive(Debug, Default)]
pub struct Registry {
    tasks: Mutex<HashMap<(u64, u64), PublishedTask>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes one task's runs under `(job, task)`. Re-publishing the
    /// same key replaces the entry (last write wins — harmless, since
    /// attempt-distinct task keys never actually collide).
    pub fn publish(&self, job: u64, task: u64, published: PublishedTask) {
        self.lock().insert((job, task), published);
    }

    /// Drops every entry of `job`, closing the published files.
    pub fn retire_job(&self, job: u64) {
        self.lock().retain(|(j, _), _| *j != job);
    }

    /// Published tasks currently registered (all jobs).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(u64, u64), PublishedTask>> {
        self.tasks.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One partition's run directory; `None` when the task or partition
    /// is unknown (→ `NotFound` on the wire).
    fn dir(&self, key: RunKey) -> Option<Vec<RunSpec>> {
        self.lock()
            .get(&(key.job, key.task))?
            .parts
            .get(key.partition as usize)
            .cloned()
    }

    /// The file and run directory a fetch of `key` resolves against.
    fn locate(&self, key: RunKey) -> Option<(Option<Arc<File>>, Vec<RunSpec>)> {
        let guard = self.lock();
        let task = guard.get(&(key.job, key.task))?;
        let specs = task.parts.get(key.partition as usize)?.clone();
        Some((task.file.clone(), specs))
    }
}

/// Where a [`RunServer`] listens — and what a [`FetchClient`] connects
/// to.
///
/// [`FetchClient`]: crate::FetchClient
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// A TCP socket address (the server binds an ephemeral loopback port
    /// by default).
    Tcp(std::net::SocketAddr),
    /// A Unix domain socket path (test mode: no ports, no firewalls).
    #[cfg(unix)]
    Uds(PathBuf),
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            ServerAddr::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// A byte stream to a peer: TCP or Unix domain socket.
#[derive(Debug)]
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    pub(crate) fn set_deadlines(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))
            }
            #[cfg(unix)]
            Conn::Uds(s) => {
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Connects to a server address (used by the client half).
pub(crate) fn connect(addr: &ServerAddr, timeout: Duration) -> std::io::Result<Conn> {
    match addr {
        ServerAddr::Tcp(a) => {
            let stream = TcpStream::connect_timeout(a, timeout)?;
            // Request/response round trips must not wait out Nagle +
            // delayed ACK.
            stream.set_nodelay(true)?;
            Ok(Conn::Tcp(stream))
        }
        #[cfg(unix)]
        ServerAddr::Uds(p) => Ok(Conn::Uds(UnixStream::connect(p)?)),
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let stream = l.accept()?.0;
                // Mirror the client: responses must leave immediately.
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Uds(l) => Ok(Conn::Uds(l.accept()?.0)),
        }
    }
}

/// The blocking run server. Binding spawns the accept thread; dropping
/// (or [`RunServer::shutdown`]) stops it and, for Unix sockets, removes
/// the socket file. Connection threads are detached — they exit on peer
/// close, idle timeout, or the next request after shutdown.
#[derive(Debug)]
pub struct RunServer {
    addr: ServerAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Shared per-server fault state: the request counter the drop schedule
/// runs on (global across connections, so `drop_nth` means every n-th
/// request the *server* sees, deterministically).
#[derive(Debug, Default)]
struct FaultState {
    requests: AtomicU64,
}

impl RunServer {
    /// Binds a TCP listener on `127.0.0.1` (ephemeral port) and starts
    /// serving `registry`.
    pub fn bind_tcp(registry: Arc<Registry>, faults: FaultConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = ServerAddr::Tcp(listener.local_addr()?);
        Ok(Self::start(Listener::Tcp(listener), addr, registry, faults))
    }

    /// Binds a Unix domain socket at `path` (removed on shutdown) and
    /// starts serving `registry`.
    #[cfg(unix)]
    pub fn bind_uds(
        path: &Path,
        registry: Arc<Registry>,
        faults: FaultConfig,
    ) -> std::io::Result<Self> {
        let listener = UnixListener::bind(path)?;
        let addr = ServerAddr::Uds(path.to_path_buf());
        Ok(Self::start(Listener::Uds(listener), addr, registry, faults))
    }

    fn start(
        listener: Listener,
        addr: ServerAddr,
        registry: Arc<Registry>,
        faults: FaultConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let fault_state = Arc::new(FaultState::default());
        let accept = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                let Ok(conn) = listener.accept() else {
                    // Accept errors are transient (or the listener died);
                    // re-check the stop flag and keep accepting.
                    continue;
                };
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&accept_stop);
                let fault_state = Arc::clone(&fault_state);
                std::thread::spawn(move || {
                    serve_conn(conn, &registry, faults, &fault_state, &stop)
                });
            }
        });
        Self {
            addr,
            stop,
            accept: Some(accept),
        }
    }

    /// The address clients connect to.
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Stops accepting, joins the accept thread, and removes a Unix
    /// socket file. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Poke the listener so a blocked accept() returns and observes
        // the flag.
        // tsjlint:allow(no-silent-result-drop) the self-connect exists only to wake accept(); a refused poke means the listener is already gone, which is the goal state
        let _ = connect(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            if handle.join().is_err() {
                eprintln!("tsj-netshuffle: accept thread panicked during shutdown");
            }
        }
        #[cfg(unix)]
        if let ServerAddr::Uds(path) = &self.addr {
            if let Err(e) = std::fs::remove_file(path) {
                // Never created, or a previous shutdown already removed
                // it: fine. Anything else leaks a stale socket path.
                if e.kind() != std::io::ErrorKind::NotFound {
                    eprintln!(
                        "tsj-netshuffle: failed to remove socket file {}: {e}",
                        path.display()
                    );
                }
            }
        }
    }
}

impl Drop for RunServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's request/response loop.
fn serve_conn(
    mut conn: Conn,
    registry: &Registry,
    faults: FaultConfig,
    fault_state: &FaultState,
    stop: &AtomicBool,
) {
    if conn.set_deadlines(CONN_IDLE_TIMEOUT).is_err() {
        return;
    }
    loop {
        let payload = match read_frame(&mut conn, MAX_REQUEST_FRAME) {
            Ok(Some(payload)) => payload,
            // Clean close, truncation, corrupt length, idle timeout:
            // this connection is done either way.
            Ok(None) | Err(_) => return,
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        if faults.is_active() {
            let n = fault_state.requests.fetch_add(1, Ordering::Relaxed);
            if faults.stall_us > 0 {
                std::thread::sleep(Duration::from_micros(faults.stall_us));
            }
            if faults.drop_nth > 0 && (n + faults.seed) % faults.drop_nth == faults.drop_nth - 1 {
                // Injected fault: hang up without replying. The client's
                // retry refetches the same range, so data is unaffected.
                return;
            }
        }
        let response = match Request::decode(&payload) {
            None => Response::BadRequest,
            Some(request) => respond(registry, request),
        };
        if write_frame(&mut conn, &response.encode()).is_err() {
            return;
        }
    }
}

fn respond(registry: &Registry, request: Request) -> Response {
    match request {
        Request::Dir(key) => match registry.dir(key) {
            Some(specs) => Response::Dir(specs),
            None => Response::NotFound,
        },
        Request::Fetch { key, offset, len } => {
            if len > MAX_FETCH_BYTES {
                return Response::RangeError;
            }
            let Some((file, specs)) = registry.locate(key) else {
                return Response::NotFound;
            };
            // The range must fall inside a single registered run: the
            // server hands out exactly what the directory advertised,
            // never arbitrary file bytes.
            let end = offset.saturating_add(len);
            let in_run = specs
                .iter()
                .any(|s| offset >= s.offset && end <= s.offset + s.bytes);
            let Some(file) = file.filter(|_| in_run) else {
                return Response::RangeError;
            };
            let mut buf = vec![0u8; len as usize];
            match read_exact_at(&file, &mut buf, offset) {
                Ok(()) => Response::Fetch(buf),
                Err(_) => Response::ServerError,
            }
        }
    }
}

/// Positioned read of exactly `buf.len()` bytes at `offset` — no shared
/// cursor, so concurrent connections stream from one open file.
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

#[cfg(windows)]
fn read_exact_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
    while !buf.is_empty() {
        match std::os::windows::fs::FileExt::seek_read(file, buf, offset)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "run file truncated under a ranged read",
                ))
            }
            n => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
        }
    }
    Ok(())
}
