//! End-to-end protocol suite: a real server, a real client, real (and
//! deliberately broken) sockets. Every failure mode must surface as a
//! structured error in bounded time — never a hang, never a panic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsj_netshuffle::{
    FaultConfig, FetchClient, FetchConfig, FetchError, PublishedTask, Registry, RunKey, RunServer,
    RunSpec, ServerAddr,
};

/// A registry holding one job with one task whose single run file holds
/// `payload`, split into two runs per the given spec boundaries.
fn registry_with(payload: &[u8], parts: Vec<Vec<RunSpec>>) -> (Arc<Registry>, tempdir::Guard) {
    let dir = tempdir::scratch("netshuffle-proto");
    let path = dir.path().join("task0.xruns");
    std::fs::write(&path, payload).expect("write run file");
    let file = Arc::new(std::fs::File::open(&path).expect("open run file"));
    let registry = Arc::new(Registry::new());
    registry.publish(
        7,
        0,
        PublishedTask {
            file: Some(file),
            parts,
        },
    );
    (registry, dir)
}

/// Minimal scratch-dir helper (no tempfile crate in this environment).
mod tempdir {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub struct Guard(PathBuf);

    impl Guard {
        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    pub fn scratch(tag: &str) -> Guard {
        let dir = std::env::temp_dir().join(format!(
            "tsj-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Guard(dir)
    }
}

fn tight_config() -> FetchConfig {
    FetchConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(500),
        retry_budget: 2,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(2),
        ..FetchConfig::default()
    }
}

const PAYLOAD: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";

fn two_run_parts() -> Vec<Vec<RunSpec>> {
    vec![vec![
        RunSpec {
            offset: 0,
            bytes: 10,
            records: 3,
        },
        RunSpec {
            offset: 10,
            bytes: 26,
            records: 5,
        },
    ]]
}

#[test]
fn tcp_dir_and_ranged_fetch_roundtrip() {
    let (registry, _dir) = registry_with(PAYLOAD, two_run_parts());
    let server = RunServer::bind_tcp(registry, FaultConfig::default()).expect("bind");
    let mut client = FetchClient::new(server.addr().clone(), tight_config());

    let key = RunKey {
        job: 7,
        partition: 0,
        task: 0,
    };
    let specs = client.dir(key).expect("dir");
    assert_eq!(specs, two_run_parts()[0]);

    // Whole runs.
    for spec in &specs {
        let bytes = client.fetch(key, spec.offset, spec.bytes).expect("fetch");
        assert_eq!(
            bytes,
            &PAYLOAD[spec.offset as usize..(spec.offset + spec.bytes) as usize]
        );
    }
    // A sub-range inside the second run.
    let sub = client.fetch(key, 12, 5).expect("subrange");
    assert_eq!(sub, &PAYLOAD[12..17]);

    let stats = client.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.bytes, 10 + 26 + 5);
}

#[cfg(unix)]
#[test]
fn uds_roundtrip_and_socket_cleanup() {
    let (registry, dir) = registry_with(PAYLOAD, two_run_parts());
    let sock = dir.path().join("run.sock");
    let mut server = RunServer::bind_uds(&sock, registry, FaultConfig::default()).expect("bind");
    let mut client = FetchClient::new(server.addr().clone(), tight_config());

    let key = RunKey {
        job: 7,
        partition: 0,
        task: 0,
    };
    let bytes = client.fetch(key, 0, 10).expect("fetch over uds");
    assert_eq!(bytes, &PAYLOAD[..10]);

    server.shutdown();
    assert!(!sock.exists(), "socket file should be removed on shutdown");
}

#[test]
fn unknown_keys_and_bad_ranges_are_definitive_errors() {
    let (registry, _dir) = registry_with(PAYLOAD, two_run_parts());
    let server = RunServer::bind_tcp(registry, FaultConfig::default()).expect("bind");
    let mut client = FetchClient::new(server.addr().clone(), tight_config());

    let missing = RunKey {
        job: 7,
        partition: 0,
        task: 99,
    };
    assert!(matches!(client.dir(missing), Err(FetchError::NotFound(_))));

    let bad_part = RunKey {
        job: 7,
        partition: 5,
        task: 0,
    };
    assert!(matches!(client.dir(bad_part), Err(FetchError::NotFound(_))));

    let key = RunKey {
        job: 7,
        partition: 0,
        task: 0,
    };
    // Straddles the run boundary at offset 10: not within any single run.
    assert!(matches!(
        client.fetch(key, 5, 10),
        Err(FetchError::Server(_))
    ));
    // Past the end of the file.
    assert!(matches!(
        client.fetch(key, 30, 20),
        Err(FetchError::Server(_))
    ));
    // Definitive errors must not burn retries.
    assert_eq!(client.stats().retries, 0);
}

#[test]
fn empty_task_serves_an_empty_dir_not_notfound() {
    let registry = Arc::new(Registry::new());
    registry.publish(
        3,
        0,
        PublishedTask {
            file: None,
            parts: vec![Vec::new(), Vec::new()],
        },
    );
    let server = RunServer::bind_tcp(registry, FaultConfig::default()).expect("bind");
    let mut client = FetchClient::new(server.addr().clone(), tight_config());
    let specs = client
        .dir(RunKey {
            job: 3,
            partition: 1,
            task: 0,
        })
        .expect("empty dir");
    assert!(specs.is_empty());
}

/// Raw-socket abuse: truncated frames and corrupt length prefixes must
/// not wedge the server — a well-formed client on a fresh connection
/// still gets served afterwards.
#[test]
fn malformed_frames_cost_one_connection_not_the_server() {
    let (registry, _dir) = registry_with(PAYLOAD, two_run_parts());
    let server = RunServer::bind_tcp(registry, FaultConfig::default()).expect("bind");
    let ServerAddr::Tcp(addr) = *server.addr() else {
        panic!("tcp server")
    };

    // Length prefix far beyond MAX_REQUEST_FRAME.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&u32::MAX.to_le_bytes()).expect("write");
        let mut buf = [0u8; 16];
        // Server hangs up without replying.
        assert_eq!(raw.read(&mut buf).expect("read"), 0);
    }
    // Truncated frame: claims 64 bytes, sends 3, then closes.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&64u32.to_le_bytes()).expect("write");
        raw.write_all(b"abc").expect("write");
        drop(raw);
    }
    // Well-formed garbage payload: decodes to no request → BadRequest.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        raw.write_all(&4u32.to_le_bytes()).expect("write");
        raw.write_all(b"\xffJNK").expect("write");
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).expect("status frame");
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        raw.read_exact(&mut body).expect("status body");
        // ST_BAD_REQUEST on the wire.
        assert_eq!(body, [3]);
    }

    // The server is still healthy.
    let mut client = FetchClient::new(server.addr().clone(), tight_config());
    let bytes = client
        .fetch(
            RunKey {
                job: 7,
                partition: 0,
                task: 0,
            },
            0,
            10,
        )
        .expect("server survived the abuse");
    assert_eq!(bytes, &PAYLOAD[..10]);
}

#[test]
fn dead_server_exhausts_the_retry_budget_in_bounded_time() {
    // Bind, learn the address, then shut down: connects get refused.
    let registry = Arc::new(Registry::new());
    let mut server = RunServer::bind_tcp(registry, FaultConfig::default()).expect("bind");
    let addr = server.addr().clone();
    server.shutdown();

    let config = tight_config();
    let mut client = FetchClient::new(addr, config);
    let started = Instant::now();
    let err = client
        .dir(RunKey {
            job: 1,
            partition: 0,
            task: 0,
        })
        .expect_err("server is gone");
    match err {
        FetchError::Exhausted { attempts, .. } => {
            assert_eq!(attempts, config.retry_budget + 1)
        }
        other => panic!("expected Exhausted, got {other}"),
    }
    assert_eq!(client.stats().retries, u64::from(config.retry_budget));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "failure must be bounded, took {:?}",
        started.elapsed()
    );
}

#[test]
fn injected_drops_are_retried_and_data_is_intact() {
    let (registry, _dir) = registry_with(PAYLOAD, two_run_parts());
    // Drop every 2nd request: every other attempt loses its connection.
    let faults = FaultConfig {
        drop_nth: 2,
        stall_us: 0,
        seed: 1,
    };
    let server = RunServer::bind_tcp(registry, faults).expect("bind");
    let mut client = FetchClient::new(server.addr().clone(), tight_config());

    let key = RunKey {
        job: 7,
        partition: 0,
        task: 0,
    };
    let specs = client.dir(key).expect("dir despite drops");
    let mut fetched = Vec::new();
    for spec in &specs {
        fetched.extend(client.fetch(key, spec.offset, spec.bytes).expect("fetch"));
    }
    assert_eq!(fetched, PAYLOAD, "faults must never corrupt data");
    assert!(
        client.stats().retries > 0,
        "a 1-in-2 drop rate must force at least one retry"
    );
}

#[test]
fn stall_past_the_deadline_times_out_within_budgeted_attempts() {
    let (registry, _dir) = registry_with(PAYLOAD, two_run_parts());
    // Stall each request 300ms against a 100ms deadline: every attempt
    // times out.
    let faults = FaultConfig {
        drop_nth: 0,
        stall_us: 300_000,
        seed: 0,
    };
    let server = RunServer::bind_tcp(registry, faults).expect("bind");
    let config = FetchConfig {
        request_timeout: Duration::from_millis(100),
        retry_budget: 1,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(1),
        ..FetchConfig::default()
    };
    let mut client = FetchClient::new(server.addr().clone(), config);
    let started = Instant::now();
    let err = client
        .dir(RunKey {
            job: 7,
            partition: 0,
            task: 0,
        })
        .expect_err("every attempt stalls past the deadline");
    assert!(matches!(
        err,
        FetchError::Exhausted { attempts: 2, last } if matches!(*last, FetchError::Timeout)
    ));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeouts must bound the stall, took {:?}",
        started.elapsed()
    );
}

#[test]
fn concurrent_clients_share_one_server() {
    let (registry, _dir) = registry_with(PAYLOAD, two_run_parts());
    let server = RunServer::bind_tcp(registry, FaultConfig::default()).expect("bind");
    let addr = server.addr().clone();
    let key = RunKey {
        job: 7,
        partition: 0,
        task: 0,
    };
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = FetchClient::new(addr, tight_config());
                let specs = client.dir(key).expect("dir");
                let mut out = Vec::new();
                for spec in specs {
                    out.extend(client.fetch(key, spec.offset, spec.bytes).expect("fetch"));
                }
                out
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().expect("no panics"), PAYLOAD);
    }
}
