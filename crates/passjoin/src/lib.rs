//! PassJoin / MassJoin: scalable string-similarity self-joins under `LD`
//! and `NLD` thresholds (Sec. III-D of the paper).
//!
//! TSJ reduces the NSLD-join of tokenized strings to an NLD-join of their
//! *token spaces* (Theorem 3), and performs that join with MassJoin \[19\], a
//! MapReduce-distributed version of Pass-Join \[36\]. The building blocks:
//!
//! * [`segments`] — the even-partition segmenting scheme (Lemma 7: any
//!   `U + 1` segments of `y` guarantee a shared substring with any `x`
//!   within `LD ≤ U`) and the multi-match-aware substring windows that keep
//!   the probe side's candidate substrings to `O(U)` per segment.
//! * [`serial`] — single-threaded PassJoin self-joins under an `LD`
//!   threshold ([`ld_self_join_serial`]) and an `NLD` threshold
//!   ([`nld_self_join_serial`]), used as reference implementations and by
//!   small workloads.
//! * [`massjoin`] — [`MassJoin`]: the same join staged as two MapReduce
//!   jobs (chunk-grouping candidate generation, then dedup + banded
//!   verification), executed on a [`tsj_mapreduce::Cluster`].
//!
//! **Threshold domain.** The NLD joins guarantee completeness for
//! `t < 2/3`: beyond that, Lemma 8's cap `U` reaches the token length and
//! the even-partition scheme degenerates. The paper sweeps `T ∈ [0.025,
//! 0.225]`, far inside the guaranteed region; the joins debug-assert this.

pub mod massjoin;
pub mod segments;
pub mod serial;

use tsj_mapreduce::Spill;

pub use massjoin::{ChunkRole, MassJoin};
pub use segments::{even_partitions, substring_window};
pub use serial::{ld_self_join_serial, nld_self_join_serial};

/// A verified NLD-similar token pair produced by the joins.
///
/// Ids are the indices of the tokens in the join's input slice; `a < b`
/// always. `ld` is carried alongside `nld` because the TSJ histogram filter
/// (Sec. III-E2) charges matched token pairs their exact edit cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarTokenPair {
    /// Smaller token index.
    pub a: u32,
    /// Larger token index.
    pub b: u32,
    /// Exact Levenshtein distance between the tokens.
    pub ld: u32,
    /// Normalized Levenshtein distance (≤ the join threshold).
    pub nld: f64,
}

impl SimilarTokenPair {
    pub(crate) fn new(i: u32, j: u32, ld: u32, nld: f64) -> Self {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        Self { a, b, ld, nld }
    }
}

/// Job outputs are [`Spill`] so a dataset-producing stage can keep them
/// runtime-side (and spill them) instead of materializing a driver `Vec`.
impl Spill for SimilarTokenPair {
    fn spill(&self, out: &mut Vec<u8>) {
        self.a.spill(out);
        self.b.spill(out);
        self.ld.spill(out);
        self.nld.spill(out);
    }

    fn restore(buf: &mut &[u8]) -> Option<Self> {
        Some(Self {
            a: u32::restore(buf)?,
            b: u32::restore(buf)?,
            ld: u32::restore(buf)?,
            nld: f64::restore(buf)?,
        })
    }
}
