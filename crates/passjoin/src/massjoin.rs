//! MassJoin: the Pass-Join NLD self-join staged as MapReduce jobs
//! (Deng et al. \[19\], adapted to NLD per Sec. III-D).
//!
//! Two jobs:
//!
//! 1. **`massjoin.candidates`** — every token plays both roles: as the
//!    *indexed* (longer) side it emits its Lemma-7 segments keyed by the
//!    chunk `(length, segment index, content)`; as the *probe* (shorter)
//!    side it emits the multi-match-aware substrings of every valid indexed
//!    length (Lemmas 8–9). Reducers cross segment-bearers with
//!    substring-bearers under the length condition and emit candidate id
//!    pairs. Chunk keys are 64-bit fingerprints ("whenever possible, uses
//!    unique ids of chunks and tokens"); fingerprint collisions only ever
//!    *add* spurious candidates, which verification removes.
//! 2. **`massjoin.verify`** — groups by candidate pair (deduplicating the
//!    multi-chunk hits) and runs the banded NLD verifier exactly once per
//!    distinct pair.

use std::sync::Arc;

use tsj_mapreduce::{
    fingerprint64, Cluster, Dedup, Emitter, JobError, OutputSink, SimReport, Spill,
};
use tsj_strdist::{max_ld_given_nld, min_len_given_nld};

use crate::segments::{even_partitions, substring_window};
use crate::serial::{fp_chars, to_chars, verify_nld, MAX_COMPLETE_T};
use crate::SimilarTokenPair;

/// Which role a token plays in a candidate chunk group.
///
/// Public as the workspace's exemplar of a job-specific [`Spill`] codec
/// on an enum (a one-byte tag plus payload); its roundtrip and
/// corrupt-tag behaviour are property-tested in
/// `crates/mapreduce/tests/codec_roundtrip.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkRole {
    /// The token contributed this chunk as one of its segments (indexed).
    Seg(u32),
    /// The token contributed this chunk as a probe substring.
    Sub(u32),
}

/// Shuffle values must be spillable so the candidates job can run with
/// memory-bounded mappers (`ShuffleConfig`): a one-byte role tag plus the
/// token id.
impl Spill for ChunkRole {
    fn spill(&self, out: &mut Vec<u8>) {
        match self {
            ChunkRole::Seg(id) => {
                out.push(0);
                id.spill(out);
            }
            ChunkRole::Sub(id) => {
                out.push(1);
                id.spill(out);
            }
        }
    }

    fn restore(buf: &mut &[u8]) -> Option<Self> {
        let (tag, rest) = buf.split_first()?;
        *buf = rest;
        match tag {
            0 => Some(ChunkRole::Seg(u32::restore(buf)?)),
            1 => Some(ChunkRole::Sub(u32::restore(buf)?)),
            _ => None,
        }
    }
}

/// A MassJoin executor bound to a cluster and an `NLD` threshold.
///
/// Both jobs inherit the cluster's
/// [`ShuffleConfig`](tsj_mapreduce::ShuffleConfig) and can run with
/// memory-bounded mappers: the candidates job's `⟨chunk, role⟩` records
/// spill via `ChunkRole`'s `Spill` impl, and the verify job's pair keys
/// are plain tuples. Output is identical to the unbounded configuration.
#[derive(Debug, Clone)]
pub struct MassJoin<'c> {
    cluster: &'c Cluster,
    t: f64,
}

impl<'c> MassJoin<'c> {
    /// Creates a joiner.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 2/3)` (see crate docs).
    pub fn new(cluster: &'c Cluster, t: f64) -> Self {
        assert!(
            (0.0..MAX_COMPLETE_T).contains(&t),
            "NLD threshold {t} outside the completeness domain [0, 2/3)"
        );
        Self { cluster, t }
    }

    /// NLD self-join over `tokens`; ids in the result are indices into
    /// `tokens`. Returns the verified pairs plus the per-job simulation
    /// report.
    ///
    /// The two jobs are recorded as a lazy
    /// [`Dataset`](tsj_mapreduce::Dataset) graph and execute at the
    /// `collect` terminal with cross-stage overlap: as each candidates
    /// reduce task finishes its partition, the verify job's map task for
    /// that partition starts on the shared worker pool. Candidate pairs
    /// stay partitioned inside the runtime (spilled to sorted runs under
    /// a bounded shuffle) and feed job 2's map wave directly — the
    /// candidate set never materializes in driver memory, so job 1's
    /// [`driver_out_records`](tsj_mapreduce::JobStats::driver_out_records)
    /// is zero. Only the verified pairs cross back at collect time.
    pub fn nld_self_join(
        &self,
        tokens: &[impl AsRef<str>],
    ) -> Result<(Vec<SimilarTokenPair>, SimReport), JobError> {
        let t = self.t;
        let chars = prep_chars(tokens);
        let ids: Vec<u32> = (0..chars.len() as u32).collect();

        let verified = self
            .cluster
            .input_vec(ids)
            .map_reduce_combined(
                "massjoin.candidates",
                candidate_map(&chars, t),
                &Dedup,
                candidate_reduce(&chars, t),
            )?
            .map_reduce_combined(
                "massjoin.verify",
                |&pair, e: &mut Emitter<(u32, u32), ()>| e.emit(pair, ()),
                &Dedup,
                verify_reduce(&chars, t),
            )?;
        let (mut pairs, report) = verified.collect()?;
        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        Ok((pairs, report))
    }

    /// The collect-based form of [`MassJoin::nld_self_join`]: the same two
    /// jobs as one-stage graphs, with the candidate set materialized in a
    /// driver `Vec` between them. Kept as the migration reference and the
    /// baseline the dataset-chained join is differentially tested against
    /// (`crates/core/tests/dataset_equivalence.rs`).
    pub fn nld_self_join_collected(
        &self,
        tokens: &[impl AsRef<str>],
    ) -> Result<(Vec<SimilarTokenPair>, SimReport), JobError> {
        let t = self.t;
        let chars = prep_chars(tokens);
        let ids: Vec<u32> = (0..chars.len() as u32).collect();
        let mut report = SimReport::new();

        let candidates = self.cluster.run_combined(
            "massjoin.candidates",
            &ids,
            candidate_map(&chars, t),
            &Dedup,
            candidate_reduce(&chars, t),
        )?;
        report.push(candidates.stats);

        let verified = self.cluster.run_combined(
            "massjoin.verify",
            &candidates.output,
            |&pair, e: &mut Emitter<(u32, u32), ()>| e.emit(pair, ()),
            &Dedup,
            verify_reduce(&chars, t),
        )?;
        report.push(verified.stats);

        let mut pairs = verified.output;
        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        Ok((pairs, report))
    }
}

/// Decomposes the tokens into shared char vectors (both jobs and both
/// join forms read them).
fn prep_chars(tokens: &[impl AsRef<str>]) -> Arc<Vec<Vec<char>>> {
    Arc::new(tokens.iter().map(|tk| to_chars(tk.as_ref())).collect())
}

/// Job 1's mapper: every token emits its Lemma-7 segments (indexed role)
/// and the multi-match-aware substrings of every valid indexed length
/// (probe role, Lemmas 8–9).
///
/// A probe token can hit the same chunk content at several window
/// positions, emitting duplicate ⟨chunk, role⟩ records; the reducer
/// crosses role *sets*, so the `Dedup` combiner drops those duplicates
/// before the shuffle.
fn candidate_map(
    chars: &Arc<Vec<Vec<char>>>,
    t: f64,
) -> impl Fn(&u32, &mut Emitter<u64, ChunkRole>) + Sync {
    let chars = Arc::clone(chars);
    let max_len = chars.iter().map(Vec::len).max().unwrap_or(0);
    move |&id, e| {
        let x = &chars[id as usize];
        let lx = x.len();
        if lx == 0 {
            return;
        }
        // Indexed role: own segments.
        let u_own = max_ld_given_nld(lx, lx, t);
        for (i, (start, seg_len)) in even_partitions(lx, u_own + 1).into_iter().enumerate() {
            let key = chunk_key(lx, i, fp_chars(&x[start..start + seg_len]));
            e.emit(key, ChunkRole::Seg(id));
            e.add_counter("segments_emitted", 1);
        }
        // Probe role: substrings against every valid indexed length.
        let lmax = ((lx as f64 / (1.0 - t)).floor() as usize).min(max_len);
        for l in lx..=lmax {
            if min_len_given_nld(l, t) > lx {
                continue;
            }
            let u = max_ld_given_nld(l, l, t);
            for (i, (start, seg_len)) in even_partitions(l, u + 1).into_iter().enumerate() {
                let Some((lo, hi)) = substring_window(lx, l, i, start, seg_len, u) else {
                    continue;
                };
                for p in lo..=hi {
                    let key = chunk_key(l, i, fp_chars(&x[p..p + seg_len]));
                    e.emit(key, ChunkRole::Sub(id));
                    e.add_counter("substrings_emitted", 1);
                }
            }
        }
    }
}

/// Job 1's reducer: crosses segment-bearers with substring-bearers under
/// the length condition and emits candidate id pairs.
fn candidate_reduce(
    chars: &Arc<Vec<Vec<char>>>,
    t: f64,
) -> impl Fn(&u64, Vec<ChunkRole>, &mut OutputSink<(u32, u32)>) + Sync {
    let chars = Arc::clone(chars);
    move |_chunk, roles, out| {
        let mut segs: Vec<u32> = Vec::new();
        let mut subs: Vec<u32> = Vec::new();
        for r in roles {
            match r {
                ChunkRole::Seg(id) => segs.push(id),
                ChunkRole::Sub(id) => subs.push(id),
            }
        }
        for &y in &segs {
            let ly = chars[y as usize].len();
            for &x in &subs {
                let lx = chars[x as usize].len();
                // Length condition (Lemmas 8–9): probe is shorter.
                if lx > ly || min_len_given_nld(ly, t) > lx {
                    continue;
                }
                // Same length: the larger id probes (one emission
                // direction, mirroring the serial join).
                if lx == ly && x <= y {
                    continue;
                }
                let (a, b) = if x < y { (x, y) } else { (y, x) };
                out.emit((a, b));
                out.add_counter("candidates_generated", 1);
            }
        }
    }
}

/// Job 2's reducer: grouping on the pair itself deduplicates (the `Dedup`
/// combiner does the same map-side, so multi-chunk hits of one pair
/// shuffle a single record per map task); each distinct pair is verified
/// by the banded NLD check exactly once.
fn verify_reduce(
    chars: &Arc<Vec<Vec<char>>>,
    t: f64,
) -> impl Fn(&(u32, u32), Vec<()>, &mut OutputSink<SimilarTokenPair>) + Sync {
    let chars = Arc::clone(chars);
    move |&(a, b), hits, out| {
        debug_assert!(!hits.is_empty());
        out.add_counter("candidates_distinct", 1);
        out.add_work(5); // banded NLD verification per distinct pair
        if let Some(p) = verify_nld(a, &chars[a as usize], b, &chars[b as usize], t) {
            out.add_counter("pairs_verified", 1);
            out.emit(p);
        }
    }
}

#[inline]
fn chunk_key(indexed_len: usize, seg_idx: usize, content_fp: u64) -> u64 {
    fingerprint64(&(indexed_len as u32, seg_idx as u16, content_fp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::nld_self_join_serial;

    fn cluster() -> Cluster {
        Cluster::with_machines(16)
    }

    #[test]
    fn agrees_with_serial_join() {
        let tokens = [
            "barak", "barack", "obama", "obamma", "ubama", "burak", "chan", "chank", "kalan",
            "alan", "jonathan", "jonathon", "jon", "bob", "bob",
        ];
        let c = cluster();
        for t in [0.05, 0.1, 0.2, 0.3] {
            let (got, report) = MassJoin::new(&c, t).nld_self_join(&tokens).unwrap();
            let expect = nld_self_join_serial(&tokens, t);
            assert_eq!(got, expect, "t = {t}");
            assert_eq!(report.jobs().len(), 2);
            // Dedup happened: distinct candidates ≤ generated candidates.
            assert!(
                report.counter("candidates_distinct") <= report.counter("candidates_generated")
            );
        }
    }

    #[test]
    fn empty_input() {
        let (pairs, _) = MassJoin::new(&cluster(), 0.1)
            .nld_self_join(&[] as &[&str])
            .unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "completeness domain")]
    fn rejects_bad_threshold() {
        let _ = MassJoin::new(&cluster(), 0.8);
    }
}
