//! Even-partition segmenting and multi-match-aware substring selection
//! (the Pass-Join machinery behind Lemma 7).

/// Splits a string of length `len` into `parts` contiguous segments whose
/// lengths differ by at most one (the paper's *even-partition scheme*,
/// Sec. III-D: it "reduces the space of string chunks").
///
/// Returns `(start, seg_len)` pairs. Shorter segments come first, matching
/// Pass-Join's convention (`len % parts` trailing segments are one longer).
///
/// # Panics
///
/// Panics if `parts == 0` or `parts > len` (an empty segment would be a
/// substring of everything and defeat the filter).
pub fn even_partitions(len: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts >= 1, "at least one segment required");
    assert!(
        parts <= len,
        "cannot split length {len} into {parts} non-empty segments"
    );
    let base = len / parts;
    let longer = len % parts; // this many trailing segments have base + 1
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let seg_len = if i < parts - longer { base } else { base + 1 };
        out.push((start, seg_len));
        start += seg_len;
    }
    debug_assert_eq!(start, len);
    out
}

/// The multi-match-aware substring window of Pass-Join.
///
/// For the `i`-th segment (0-based `seg_idx`) of an indexed string `y`
/// (`|y| = indexed_len`), starting at `seg_start` with length `seg_len`,
/// and a probe string `x` (`|x| = probe_len`) under `LD(x, y) ≤ u`:
/// a substring of `x` equal to the segment can only start within
///
/// ```text
/// [p − i, p + i] ∩ [p + Δ − (u − i), p + Δ + (u − i)] ∩ [0, |x| − seg_len]
/// ```
///
/// where `p = seg_start`, `Δ = |x| − |y|`, because at most `i` edits can
/// precede the segment and at most `u − i` can follow it. Returns the
/// inclusive start-position range, or `None` when empty.
pub fn substring_window(
    probe_len: usize,
    indexed_len: usize,
    seg_idx: usize,
    seg_start: usize,
    seg_len: usize,
    u: usize,
) -> Option<(usize, usize)> {
    if seg_len == 0 || seg_len > probe_len {
        return None;
    }
    let p = seg_start as isize;
    let i = seg_idx as isize;
    let u = u as isize;
    let delta = probe_len as isize - indexed_len as isize;
    let lo = 0isize.max(p - i).max(p + delta - (u - i));
    let hi = (probe_len as isize - seg_len as isize)
        .min(p + i)
        .min(p + delta + (u - i));
    if lo > hi {
        None
    } else {
        Some((lo as usize, hi as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_strdist::levenshtein_within_slices;

    #[test]
    fn even_partitions_cover_exactly() {
        for len in 1..=30 {
            for parts in 1..=len {
                let segs = even_partitions(len, parts);
                assert_eq!(segs.len(), parts);
                let mut pos = 0;
                for (start, seg_len) in &segs {
                    assert_eq!(*start, pos);
                    assert!(*seg_len >= 1);
                    pos += seg_len;
                }
                assert_eq!(pos, len);
                // Even: lengths differ by at most one, shorter first.
                let lens: Vec<usize> = segs.iter().map(|(_, l)| *l).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1);
                assert!(lens.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty segments")]
    fn rejects_overpartitioning() {
        let _ = even_partitions(3, 4);
    }

    #[test]
    fn window_basic_bounds() {
        // y = "abcdef" (len 6), 3 segments of len 2; x = "abcdef", u = 2.
        // Segment 0 at p=0: window [0, 0+0] ∩ [Δ−2, Δ+2] = [0, 0] (Δ=0 → lo ≥ −2).
        assert_eq!(substring_window(6, 6, 0, 0, 2, 2), Some((0, 0)));
        // Segment 2 at p=4: [4−2, 4+2] ∩ [4+0−0, 4+0+0] = [4, 4].
        assert_eq!(substring_window(6, 6, 2, 4, 2, 2), Some((4, 4)));
    }

    #[test]
    fn window_empty_when_segment_longer_than_probe() {
        assert_eq!(substring_window(3, 8, 0, 0, 4, 2), None);
    }

    /// Lemma 7 end-to-end: for every pair within LD ≤ u, at least one of the
    /// u+1 segments of one string appears as a substring of the other at a
    /// position inside the window.
    #[test]
    fn lemma7_completeness_exhaustive() {
        // All strings of length 3..=6 over {a, b}.
        let mut words: Vec<Vec<u8>> = Vec::new();
        for len in 3..=6usize {
            for bits in 0..(1u32 << len) {
                words.push(
                    (0..len)
                        .map(|i| if bits >> i & 1 == 1 { b'b' } else { b'a' })
                        .collect(),
                );
            }
        }
        let u = 2usize;
        for y in &words {
            if y.len() <= u {
                continue; // wildcard case handled separately by the joins
            }
            let segs = even_partitions(y.len(), u + 1);
            for x in &words {
                if levenshtein_within_slices(x, y, u).is_none() {
                    continue;
                }
                let mut witnessed = false;
                'outer: for (idx, (start, seg_len)) in segs.iter().enumerate() {
                    if let Some((lo, hi)) =
                        substring_window(x.len(), y.len(), idx, *start, *seg_len, u)
                    {
                        for p in lo..=hi {
                            if x[p..p + seg_len] == y[*start..*start + seg_len] {
                                witnessed = true;
                                break 'outer;
                            }
                        }
                    }
                }
                assert!(
                    witnessed,
                    "no segment witness for x={:?} y={:?} (LD ≤ {u})",
                    std::str::from_utf8(x).unwrap(),
                    std::str::from_utf8(y).unwrap(),
                );
            }
        }
    }
}
