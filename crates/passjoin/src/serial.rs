//! Serial Pass-Join self-joins (reference implementations).
//!
//! Both joins follow the same structure: every string is *indexed* by the
//! segments of the even-partition scheme (playing the longer role `y`), and
//! every string *probes* the index with the substrings selected by the
//! multi-match-aware windows (playing the shorter role `x`, per the
//! self-join optimization of Sec. III-G1: only `|x| ≤ |y|` is considered).
//! Each unordered pair is therefore generated once, by its shorter member
//! (ties broken by index).

use std::collections::{HashMap, HashSet};

use tsj_mapreduce::{fingerprint64, FxBuildHasher};
use tsj_strdist::{levenshtein_within_slices, max_ld_given_nld, min_len_given_nld, nld_from_ld};

use crate::segments::{even_partitions, substring_window};
use crate::SimilarTokenPair;

/// Upper limit on thresholds for which the segment scheme guarantees
/// completeness (see crate docs).
pub(crate) const MAX_COMPLETE_T: f64 = 2.0 / 3.0;

type SegKey = (u32, u16, u64); // (indexed length, segment index, content fp)

pub(crate) fn to_chars(s: &str) -> Vec<char> {
    s.chars().collect()
}

pub(crate) fn fp_chars(slice: &[char]) -> u64 {
    fingerprint64(&slice)
}

/// Self-join under a fixed Levenshtein threshold `u`: returns all pairs
/// `(i, j, LD)` with `i < j` and `LD(tokens[i], tokens[j]) ≤ u`.
///
/// Complete for any `u` (strings no longer than `u` are handled by a
/// by-length wildcard index, since Lemma 7's partition then contains empty
/// segments which match everywhere).
pub fn ld_self_join_serial(tokens: &[impl AsRef<str>], u: usize) -> Vec<(u32, u32, u32)> {
    let chars: Vec<Vec<char>> = tokens.iter().map(|t| to_chars(t.as_ref())).collect();
    let n = chars.len();

    // Wildcard index: strings too short to partition into u+1 segments.
    let mut wildcard: HashMap<usize, Vec<u32>, FxBuildHasher> = HashMap::default();
    // Segment index over the rest.
    let mut index: HashMap<SegKey, Vec<u32>, FxBuildHasher> = HashMap::default();
    for (id, y) in chars.iter().enumerate() {
        let l = y.len();
        if l <= u {
            wildcard.entry(l).or_default().push(id as u32);
        } else {
            for (i, (start, seg_len)) in even_partitions(l, u + 1).into_iter().enumerate() {
                let key = (l as u32, i as u16, fp_chars(&y[start..start + seg_len]));
                index.entry(key).or_default().push(id as u32);
            }
        }
    }

    let mut out = Vec::new();
    let mut cand: HashSet<u32, FxBuildHasher> = HashSet::default();
    for (xid, x) in chars.iter().enumerate() {
        cand.clear();
        let lx = x.len();
        for l in lx..=lx + u {
            if l <= u {
                if let Some(ids) = wildcard.get(&l) {
                    cand.extend(ids.iter().copied());
                }
            } else {
                for (i, (start, seg_len)) in even_partitions(l, u + 1).into_iter().enumerate() {
                    let Some((lo, hi)) = substring_window(lx, l, i, start, seg_len, u) else {
                        continue;
                    };
                    for p in lo..=hi {
                        let key = (l as u32, i as u16, fp_chars(&x[p..p + seg_len]));
                        if let Some(ids) = index.get(&key) {
                            cand.extend(ids.iter().copied());
                        }
                    }
                }
            }
        }
        for &yid in cand.iter() {
            let y = &chars[yid as usize];
            debug_assert!(y.len() >= lx);
            // Same-length ties: emitted once, by the larger-id probe.
            if y.len() == lx && yid >= xid as u32 {
                continue;
            }
            if let Some(d) = levenshtein_within_slices(x, y, u) {
                let (a, b) = if (xid as u32) < yid {
                    (xid as u32, yid)
                } else {
                    (yid, xid as u32)
                };
                out.push((a, b, d as u32));
            }
        }
    }
    debug_assert!(n == chars.len());
    out.sort_unstable();
    out
}

/// Self-join under an `NLD` threshold `t`: all pairs with
/// `NLD(tokens[i], tokens[j]) ≤ t`, as [`SimilarTokenPair`]s sorted by ids.
///
/// The per-length edit budget comes from Lemma 8 (`|x| ≤ |y|` branch, the
/// self-join optimization) and the probe-length window from Lemma 9.
///
/// # Panics
///
/// Panics if `t ≥ 2/3` (outside the completeness domain; see crate docs)
/// or `t < 0`.
pub fn nld_self_join_serial(tokens: &[impl AsRef<str>], t: f64) -> Vec<SimilarTokenPair> {
    assert!(
        (0.0..MAX_COMPLETE_T).contains(&t),
        "NLD threshold {t} outside the completeness domain [0, 2/3)"
    );
    let chars: Vec<Vec<char>> = tokens.iter().map(|tk| to_chars(tk.as_ref())).collect();
    let max_len = chars.iter().map(Vec::len).max().unwrap_or(0);

    // Index every non-empty token, playing the longer role.
    let mut index: HashMap<SegKey, Vec<u32>, FxBuildHasher> = HashMap::default();
    for (id, y) in chars.iter().enumerate() {
        let l = y.len();
        if l == 0 {
            continue;
        }
        let u = max_ld_given_nld(l, l, t); // |x| ≤ |y| branch at |y| = l
        debug_assert!(u < l, "t < 2/3 keeps segments non-empty");
        for (i, (start, seg_len)) in even_partitions(l, u + 1).into_iter().enumerate() {
            let key = (l as u32, i as u16, fp_chars(&y[start..start + seg_len]));
            index.entry(key).or_default().push(id as u32);
        }
    }

    let mut out = Vec::new();
    let mut cand: HashSet<u32, FxBuildHasher> = HashSet::default();
    for (xid, x) in chars.iter().enumerate() {
        let lx = x.len();
        if lx == 0 {
            continue;
        }
        cand.clear();
        let lmax = if t >= 1.0 {
            max_len
        } else {
            ((lx as f64 / (1.0 - t)).floor() as usize).min(max_len)
        };
        for l in lx..=lmax {
            // Lemma 9 guard (floating-point belt and braces).
            if min_len_given_nld(l, t) > lx {
                continue;
            }
            let u = max_ld_given_nld(l, l, t);
            for (i, (start, seg_len)) in even_partitions(l, u + 1).into_iter().enumerate() {
                let Some((lo, hi)) = substring_window(lx, l, i, start, seg_len, u) else {
                    continue;
                };
                for p in lo..=hi {
                    let key = (l as u32, i as u16, fp_chars(&x[p..p + seg_len]));
                    if let Some(ids) = index.get(&key) {
                        cand.extend(ids.iter().copied());
                    }
                }
            }
        }
        for &yid in cand.iter() {
            let y = &chars[yid as usize];
            if y.len() == lx && yid >= xid as u32 {
                continue;
            }
            if let Some(pair) = verify_nld(xid as u32, x, yid, y, t) {
                out.push(pair);
            }
        }
    }
    out.sort_unstable_by_key(|p| (p.a, p.b));
    out
}

/// Banded verification of one candidate token pair under `NLD ≤ t`.
pub(crate) fn verify_nld(
    xid: u32,
    x: &[char],
    yid: u32,
    y: &[char],
    t: f64,
) -> Option<SimilarTokenPair> {
    let (shorter, longer) = if x.len() <= y.len() {
        (x.len(), y.len())
    } else {
        (y.len(), x.len())
    };
    let cap = max_ld_given_nld(shorter, longer, t);
    let ld = levenshtein_within_slices(x, y, cap)?;
    let d = nld_from_ld(ld, x.len(), y.len());
    (d <= t).then(|| SimilarTokenPair::new(xid, yid, ld as u32, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_strdist::{levenshtein, nld};

    fn brute_ld(tokens: &[&str], u: usize) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            for j in i + 1..tokens.len() {
                let d = levenshtein(tokens[i], tokens[j]);
                if d <= u {
                    out.push((i as u32, j as u32, d as u32));
                }
            }
        }
        out
    }

    fn brute_nld(tokens: &[&str], t: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            for j in i + 1..tokens.len() {
                if nld(tokens[i], tokens[j]) <= t {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn ld_join_matches_brute_force() {
        let tokens = [
            "barak", "barack", "obama", "obamma", "ubama", "chan", "chank", "kalan", "alan", "a",
            "ab", "b", "",
        ];
        for u in 0..=3 {
            let got = ld_self_join_serial(&tokens, u);
            let expect = brute_ld(&tokens, u);
            assert_eq!(got, expect, "u = {u}");
        }
    }

    #[test]
    fn nld_join_matches_brute_force() {
        let tokens = [
            "barak", "barack", "obama", "obamma", "ubama", "burak", "chan", "chank", "kalan",
            "alan", "jonathan", "jonathon", "jon",
        ];
        for t in [0.05, 0.1, 0.15, 0.2, 0.3, 0.5] {
            let got: Vec<(u32, u32)> = nld_self_join_serial(&tokens, t)
                .iter()
                .map(|p| (p.a, p.b))
                .collect();
            let expect = brute_nld(&tokens, t);
            assert_eq!(got, expect, "t = {t}");
        }
    }

    #[test]
    fn nld_join_reports_exact_distances() {
        let tokens = ["thomson", "thompson"];
        let pairs = nld_self_join_serial(&tokens, 0.2);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].ld, 1);
        assert!((pairs[0].nld - 0.125).abs() < 1e-12);
    }

    #[test]
    fn duplicate_tokens_pair_up() {
        let tokens = ["bob", "bob", "bob"];
        let pairs = nld_self_join_serial(&tokens, 0.1);
        assert_eq!(
            pairs.iter().map(|p| (p.a, p.b)).collect::<Vec<_>>(),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        assert!(pairs.iter().all(|p| p.ld == 0 && p.nld == 0.0));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(nld_self_join_serial(&[] as &[&str], 0.1).is_empty());
        assert!(nld_self_join_serial(&["solo"], 0.1).is_empty());
        assert!(ld_self_join_serial(&[] as &[&str], 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "completeness domain")]
    fn rejects_threshold_outside_domain() {
        let _ = nld_self_join_serial(&["a", "b"], 0.7);
    }

    #[test]
    fn unicode_tokens_join_correctly() {
        let tokens = ["josé", "jose", "jane"];
        let pairs = nld_self_join_serial(&tokens, 0.25);
        // josé vs jose: LD 1, NLD 2/9 ≈ 0.222 ≤ 0.25.
        assert!(pairs.iter().any(|p| (p.a, p.b) == (0, 1)));
        // josé vs jane: LD 2 → NLD 0.4 — excluded.
        assert!(!pairs.iter().any(|p| (p.a, p.b) == (0, 2)));
    }
}
