//! Property tests: the joins are *exactly* the brute-force result set —
//! complete (no false negatives from segmenting/windowing) and correct
//! (verification removes every spurious candidate, including fingerprint
//! collisions).

use proptest::prelude::*;
use tsj_mapreduce::Cluster;
use tsj_passjoin::{ld_self_join_serial, nld_self_join_serial, MassJoin};
use tsj_strdist::{levenshtein, nld};

fn token_set() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::string::string_regex("[abc]{1,10}").unwrap(),
        0..24,
    )
}

fn brute_nld_pairs(tokens: &[String], t: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        for j in i + 1..tokens.len() {
            if nld(&tokens[i], &tokens[j]) <= t {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn serial_nld_join_equals_brute_force(tokens in token_set(), t in 0.01f64..0.6) {
        let got: Vec<(u32, u32)> =
            nld_self_join_serial(&tokens, t).iter().map(|p| (p.a, p.b)).collect();
        prop_assert_eq!(got, brute_nld_pairs(&tokens, t));
    }

    #[test]
    fn serial_ld_join_equals_brute_force(tokens in token_set(), u in 0usize..5) {
        let got = ld_self_join_serial(&tokens, u);
        let mut expect = Vec::new();
        for i in 0..tokens.len() {
            for j in i + 1..tokens.len() {
                let d = levenshtein(&tokens[i], &tokens[j]);
                if d <= u {
                    expect.push((i as u32, j as u32, d as u32));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn massjoin_equals_serial(tokens in token_set(), t in 0.01f64..0.6) {
        let cluster = Cluster::with_machines(8);
        let (got, _) = MassJoin::new(&cluster, t).nld_self_join(&tokens).unwrap();
        let expect = nld_self_join_serial(&tokens, t);
        prop_assert_eq!(got, expect);
    }

    /// Reported LD/NLD values are exact, not just threshold-consistent.
    #[test]
    fn reported_distances_are_exact(tokens in token_set(), t in 0.05f64..0.6) {
        for p in nld_self_join_serial(&tokens, t) {
            let ld = levenshtein(&tokens[p.a as usize], &tokens[p.b as usize]);
            prop_assert_eq!(ld as u32, p.ld);
            let d = nld(&tokens[p.a as usize], &tokens[p.b as usize]);
            prop_assert!((d - p.nld).abs() < 1e-12);
            prop_assert!(p.nld <= t);
        }
    }
}
