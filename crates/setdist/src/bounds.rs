//! Tokenized-string-level bounds: Lemma 6 and the histogram SLD lower
//! bound behind the TSJ pruning filter (Sec. III-E).

/// Lemma 6 (lower bound): for `L(yᵗ) ≥ L(xᵗ)`,
/// `1 − L(xᵗ)/L(yᵗ) ≤ NSLD(xᵗ, yᵗ)`.
///
/// This is the sound half of the paper's Lemma 6 and is what drives the
/// *pruning-based-on-length* filter (Sec. III-E1): a candidate pair is
/// discarded when the lower bound already exceeds the join threshold.
/// Soundness: every character-level edit changes the aggregate length by at
/// most one and the set-level edits change nothing, so
/// `SLD ≥ |L(xᵗ) − L(yᵗ)|`, and NSLD is increasing in SLD.
pub fn nsld_lower_bound_from_total_lens(total_len_x: usize, total_len_y: usize) -> f64 {
    let (short, long) = if total_len_x <= total_len_y {
        (total_len_x as f64, total_len_y as f64)
    } else {
        (total_len_y as f64, total_len_x as f64)
    };
    if long == 0.0 {
        return 0.0;
    }
    1.0 - short / long
}

/// The paper's Lemma 6 *upper* bound, `2 / (L(xᵗ)/L(yᵗ) + 2)`, provided for
/// reference only.
///
/// **Caveat (reproduction finding):** unlike its string analogue (Lemma 3),
/// this bound is *not* sound for token multisets. The paper's proof asserts
/// `SLD ≤ L(yᵗ)`, but one token cannot absorb characters from another:
/// for `xᵗ = {"aaa"}`, `yᵗ = {"b", "b"}` we get `SLD = 4 > 3 = max(L)` and
/// `NSLD = 8/9 > 2/(2/3 + 2) = 3/4`. The bound does hold when
/// `T(xᵗ) = T(yᵗ) = 1` (where SLD degenerates to LD). Nothing in the TSJ
/// algorithm relies on this upper bound, so the join is unaffected; see
/// EXPERIMENTS.md for the full note.
pub fn nsld_upper_bound_lemma6(total_len_x: usize, total_len_y: usize) -> f64 {
    let (short, long) = if total_len_x <= total_len_y {
        (total_len_x as f64, total_len_y as f64)
    } else {
        (total_len_y as f64, total_len_x as f64)
    };
    if long == 0.0 {
        return 0.0;
    }
    2.0 / (short / long + 2.0)
}

/// The largest SLD compatible with `NSLD ≤ t`:
/// `SLD ≤ ⌊t·(L(xᵗ) + L(yᵗ)) / (2 − t)⌋` (inverting Definition 4).
///
/// `t ≥ 1` admits every SLD (saturates), because `NSLD ≤ 1` always holds
/// (Lemma 5).
pub fn max_sld_given_nsld(total_len_x: usize, total_len_y: usize, t: f64) -> u64 {
    if t <= 0.0 {
        return 0;
    }
    if t >= 1.0 {
        return u64::MAX / 4;
    }
    let sum = (total_len_x + total_len_y) as f64;
    (t * sum / (2.0 - t)).floor() as u64
}

/// A cheap lower bound on `SLD(xᵗ, yᵗ)` from the sorted token-length
/// histograms alone (the filter of Sec. III-E2, length component).
///
/// Soundness: every perfect matching on the ε-padded token bigraph pays at
/// least `||a| − |b||` per matched pair (`LD(a, b) ≥ ||a| − |b||`), and over
/// multisets of numbers the ascending-sorted pairing minimizes
/// `Σ |aᵢ − bᵢ|`; ε-padding contributes zeros, which sort first.
/// Hence `SLD ≥ sld_lower_bound_sorted_lens(sorted lens of x, of y)`.
///
/// Both inputs must be sorted ascending (as produced by
/// `Corpus::sorted_token_lens` / `TokenizedString::sorted_token_lens`).
pub fn sld_lower_bound_sorted_lens(x_lens: &[u32], y_lens: &[u32]) -> u64 {
    debug_assert!(x_lens.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(y_lens.windows(2).all(|w| w[0] <= w[1]));
    let k = x_lens.len().max(y_lens.len());
    let mut sum = 0u64;
    for i in 0..k {
        // Conceptually both lists are left-padded with zeros to length k;
        // index into the suffix where real values live.
        let a = padded(x_lens, k, i);
        let b = padded(y_lens, k, i);
        sum += u64::from(a.abs_diff(b));
    }
    sum
}

#[inline]
fn padded(lens: &[u32], k: usize, i: usize) -> u32 {
    let pad = k - lens.len();
    if i < pad {
        0
    } else {
        lens[i - pad]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sld::{nsld, nsld_from_sld, sld};

    #[test]
    fn lemma6_lower_bound_holds() {
        let cases: &[(&[&str], &[&str])] = &[
            (&["chan", "kalan"], &["chank", "alan"]),
            (&["chan", "kalan"], &["alan"]),
            (&["a"], &["abcdef", "gh"]),
            (&[], &["x"]),
            (&["aaa"], &["b", "b"]),
        ];
        for (x, y) in cases {
            let lx: usize = x.iter().map(|t| t.len()).sum();
            let ly: usize = y.iter().map(|t| t.len()).sum();
            let lo = nsld_lower_bound_from_total_lens(lx, ly);
            let d = nsld(x, y);
            assert!(lo <= d + 1e-12, "{x:?} {y:?}: {lo} > {d}");
        }
    }

    /// Regression test documenting the reproduction finding: the paper's
    /// Lemma 6 *upper* bound fails for multisets with unequal token counts.
    #[test]
    fn lemma6_paper_upper_bound_counterexample() {
        let x: &[&str] = &["aaa"];
        let y: &[&str] = &["b", "b"];
        assert_eq!(sld(x, y), 4); // > max(L(x), L(y)) = 3, contra the proof
        let claimed = nsld_upper_bound_lemma6(3, 2);
        assert!((claimed - 0.75).abs() < 1e-12);
        assert!(
            nsld(x, y) > claimed,
            "NSLD {} should exceed the claimed bound",
            nsld(x, y)
        );
        // The upper bound does hold for singleton multisets (string case).
        let a: &[&str] = &["thomson"];
        let b: &[&str] = &["thompson"];
        assert!(nsld(a, b) <= nsld_upper_bound_lemma6(7, 8) + 1e-12);
    }

    #[test]
    fn sld_budget_inverts_definition4() {
        // If SLD ≤ budget then NSLD ≤ t; if SLD = budget + 1 then NSLD > t.
        for (lx, ly) in [(9usize, 9usize), (12, 7), (30, 28)] {
            for t in [0.05, 0.1, 0.2, 0.5] {
                let budget = max_sld_given_nsld(lx, ly, t);
                assert!(nsld_from_sld(budget, lx, ly) <= t + 1e-12);
                assert!(nsld_from_sld(budget + 1, lx, ly) > t);
            }
        }
    }

    #[test]
    fn budget_saturation() {
        assert_eq!(max_sld_given_nsld(5, 5, 0.0), 0);
        assert!(max_sld_given_nsld(5, 5, 1.0) >= u64::MAX / 8);
    }

    #[test]
    fn histogram_bound_is_sound_on_examples() {
        let cases: &[(&[&str], &[&str])] = &[
            (&["chan", "kalan"], &["chank", "alan"]),
            (&["chan", "kalan"], &["alan"]),
            (&["bob", "bob"], &["bob"]),
            (&["abc"], &["a", "b", "c"]),
            (&[], &["xyz"]),
        ];
        for (x, y) in cases {
            let mut xl: Vec<u32> = x.iter().map(|t| t.len() as u32).collect();
            let mut yl: Vec<u32> = y.iter().map(|t| t.len() as u32).collect();
            xl.sort_unstable();
            yl.sort_unstable();
            let lb = sld_lower_bound_sorted_lens(&xl, &yl);
            let actual = sld(x, y);
            assert!(lb <= actual, "{x:?} {y:?}: lb {lb} > SLD {actual}");
        }
    }

    #[test]
    fn histogram_bound_exact_when_only_lengths_differ() {
        // Tokens over a single repeated character: LD = length difference,
        // so the bound is tight.
        let xl = [2u32, 4];
        let yl = [3u32, 4];
        assert_eq!(sld_lower_bound_sorted_lens(&xl, &yl), 1);
        assert_eq!(sld(&["aa", "aaaa"], &["aaa", "aaaa"]), 1);
    }

    #[test]
    fn histogram_bound_handles_padding() {
        // x has fewer tokens: zeros pad the front of the sorted list.
        assert_eq!(sld_lower_bound_sorted_lens(&[4], &[4, 5]), 5);
        assert_eq!(sld_lower_bound_sorted_lens(&[], &[1, 2]), 3);
        assert_eq!(sld_lower_bound_sorted_lens(&[], &[]), 0);
    }
}
