//! Setwise Levenshtein distances over tokenized strings (Sec. II-D, III-F).
//!
//! This crate implements the paper's primary metric contribution:
//!
//! * [`sld()`] — the Setwise Levenshtein Distance (Definition 3): the minimum
//!   number of character-level edits, with free `AddEmptyToken` /
//!   `RemoveEmptyToken` set-level edits, transforming one token multiset
//!   into another. Computed exactly as a minimum-weight perfect matching on
//!   the ε-padded token bigraph (Sec. III-F, Hungarian algorithm) in
//!   `O(L(xᵗ)·L(yᵗ) + max(T(xᵗ),T(yᵗ))³)`.
//! * [`nsld`] — the Normalized SLD (Definition 4):
//!   `NSLD = 2·SLD / (L(xᵗ) + L(yᵗ) + SLD)`, a metric on `[0, 1]`
//!   (Theorem 2, Lemma 5).
//! * [`sld_greedy`] / [`nsld_greedy`] — the greedy-token-aligning
//!   approximation (Sec. III-G5), an upper bound on the exact distance.
//! * [`nsld_within`] — thresholded verification with the Lemma 6 length
//!   pre-filter and the SLD budget derived from `T`.
//! * [`bounds`] — Lemma 6 numeric bounds and the sorted-token-length SLD
//!   lower bound behind the TSJ histogram filter (Sec. III-E2).

pub mod bounds;
pub mod sld;

pub use bounds::{
    max_sld_given_nsld, nsld_lower_bound_from_total_lens, nsld_upper_bound_lemma6,
    sld_lower_bound_sorted_lens,
};
pub use sld::{nsld, nsld_from_sld, nsld_greedy, nsld_within, sld, sld_greedy, Aligning};
