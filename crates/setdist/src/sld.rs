//! SLD / NSLD computation (Definitions 3–4, Sec. III-F).

use tsj_assignment::{greedy, hungarian, SquareMatrix};
use tsj_strdist::{char_len, levenshtein};

use crate::bounds::{max_sld_given_nsld, nsld_lower_bound_from_total_lens};

/// Which token-aligning algorithm resolves the bigraph matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aligning {
    /// Exact minimum-weight perfect matching (Hungarian algorithm) — the
    /// paper's *fuzzy-token-matching* verification.
    #[default]
    Hungarian,
    /// Greedy edge selection (Sec. III-G5) — cheaper, upper-bounds the
    /// exact distance, so verified pairs are always true positives.
    Greedy,
}

/// Builds the ε-padded token bigraph weight matrix of Sec. III-F.
///
/// With `k = max(T(xᵗ), T(yᵗ))`, both token lists are padded with empty
/// tokens to length `k`; edge `(i, j)` weighs `LD(xᵗⁱ, yᵗʲ)`, and edges
/// incident to ε cost the other token's length.
fn token_bigraph<S: AsRef<str>, R: AsRef<str>>(x: &[S], y: &[R]) -> SquareMatrix {
    let k = x.len().max(y.len());
    SquareMatrix::from_fn(k, |i, j| {
        let xi = x.get(i).map(AsRef::as_ref).unwrap_or("");
        let yj = y.get(j).map(AsRef::as_ref).unwrap_or("");
        match (xi.is_empty(), yj.is_empty()) {
            (true, true) => 0,
            (true, false) => char_len(yj) as u64,
            (false, true) => char_len(xi) as u64,
            (false, false) => levenshtein(xi, yj) as u64,
        }
    })
}

fn sld_with(x: &[impl AsRef<str>], y: &[impl AsRef<str>], aligning: Aligning) -> u64 {
    if x.is_empty() && y.is_empty() {
        return 0;
    }
    let m = token_bigraph(x, y);
    match aligning {
        Aligning::Hungarian => hungarian(&m).cost,
        Aligning::Greedy => greedy(&m).cost,
    }
}

/// Exact Setwise Levenshtein Distance (Definition 3).
///
/// # Examples
///
/// From Sec. II-D1: with `xᵗ = {"chan", "kalan"}`, `yᵗ = {"chank", "alan"}`
/// and `zᵗ = {"alan"}`, `SLD(xᵗ, yᵗ) = 2` and `SLD(xᵗ, zᵗ) = 5`.
///
/// ```
/// use tsj_setdist::sld;
/// assert_eq!(sld(&["chan", "kalan"], &["chank", "alan"]), 2);
/// assert_eq!(sld(&["chan", "kalan"], &["alan"]), 5);
/// ```
pub fn sld(x: &[impl AsRef<str>], y: &[impl AsRef<str>]) -> u64 {
    sld_with(x, y, Aligning::Hungarian)
}

/// Greedy-token-aligning SLD (Sec. III-G5): an upper bound on [`sld`].
pub fn sld_greedy(x: &[impl AsRef<str>], y: &[impl AsRef<str>]) -> u64 {
    sld_with(x, y, Aligning::Greedy)
}

/// Converts an SLD value into NSLD (Definition 4). Two empty multisets have
/// `NSLD = 0`.
#[inline]
pub fn nsld_from_sld(sld: u64, total_len_x: usize, total_len_y: usize) -> f64 {
    let denom = total_len_x as u64 + total_len_y as u64 + sld;
    if denom == 0 {
        0.0
    } else {
        2.0 * sld as f64 / denom as f64
    }
}

/// Exact Normalized Setwise Levenshtein Distance (Definition 4).
///
/// ```
/// use tsj_setdist::nsld;
/// // Sec. II-D2 example: NSLD = 2·2 / (9 + 9 + 2) = 0.2.
/// assert!((nsld(&["chan", "kalan"], &["chank", "alan"]) - 0.2).abs() < 1e-12);
/// ```
pub fn nsld(x: &[impl AsRef<str>], y: &[impl AsRef<str>]) -> f64 {
    let (lx, ly) = (total_len(x), total_len(y));
    nsld_from_sld(sld(x, y), lx, ly)
}

/// Greedy-aligned NSLD: an upper bound on [`nsld`].
pub fn nsld_greedy(x: &[impl AsRef<str>], y: &[impl AsRef<str>]) -> f64 {
    let (lx, ly) = (total_len(x), total_len(y));
    nsld_from_sld(sld_greedy(x, y), lx, ly)
}

/// Thresholded verification: `Some(NSLD)` when `NSLD(xᵗ, yᵗ) ≤ t` under the
/// chosen aligning, `None` otherwise.
///
/// Applies the Lemma 6 aggregate-length pre-filter before any edit-distance
/// work, then compares the computed SLD against the budget
/// `⌊t·(L(xᵗ)+L(yᵗ)) / (2−t)⌋` (the SLD value at which NSLD crosses `t`).
///
/// With [`Aligning::Greedy`] the reported distance is an upper bound, so a
/// `Some` result is still guaranteed correct (`NSLD ≤ greedy NSLD ≤ t`) —
/// the approximation can only lose pairs, never invent them.
pub fn nsld_within(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    t: f64,
    aligning: Aligning,
) -> Option<f64> {
    if t < 0.0 {
        return None;
    }
    let (lx, ly) = (total_len(x), total_len(y));
    if nsld_lower_bound_from_total_lens(lx, ly) > t {
        return None; // Lemma 6: lengths alone rule the pair out
    }
    let s = sld_with(x, y, aligning);
    if t < 1.0 && s > max_sld_given_nsld(lx, ly, t) {
        return None;
    }
    let d = nsld_from_sld(s, lx, ly);
    (d <= t).then_some(d)
}

fn total_len(tokens: &[impl AsRef<str>]) -> usize {
    tokens.iter().map(|t| char_len(t.as_ref())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: &[&str] = &["chan", "kalan"];
    const Y: &[&str] = &["chank", "alan"];
    const Z: &[&str] = &["alan"];

    #[test]
    fn paper_examples() {
        assert_eq!(sld(X, Y), 2);
        assert_eq!(sld(X, Z), 5);
        assert!((nsld(X, Y) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn identity_and_shuffles_are_free() {
        assert_eq!(sld(X, X), 0);
        assert_eq!(sld(&["kalan", "chan"], X), 0);
        assert_eq!(nsld(&["barak", "obama"], &["obama", "barak"]), 0.0);
    }

    #[test]
    fn empty_multisets() {
        let e: &[&str] = &[];
        assert_eq!(sld(e, e), 0);
        assert_eq!(nsld(e, e), 0.0);
        // Lemma 5 extreme: one side empty → NSLD = 1.
        assert_eq!(sld(e, Z), 4);
        assert_eq!(nsld(e, Z), 1.0);
    }

    #[test]
    fn symmetry() {
        assert_eq!(sld(X, Y), sld(Y, X));
        assert_eq!(sld(X, Z), sld(Z, X));
        assert_eq!(nsld(X, Z), nsld(Z, X));
    }

    #[test]
    fn padding_handles_unequal_token_counts() {
        // {"ab"} vs {"ab", "cd"}: match "ab" exactly, delete "cd" → 2 edits.
        assert_eq!(sld(&["ab"], &["ab", "cd"]), 2);
        // {"abc"} vs {"a","b","c"}: best is keep one char pair aligned.
        // Matching "abc"→"a" (2 edits) + insert "b" (1) + insert "c" (1) = 4.
        assert_eq!(sld(&["abc"], &["a", "b", "c"]), 4);
    }

    #[test]
    fn duplicate_tokens_respected() {
        // {"bob","bob"} vs {"bob"}: one copy must be deleted (3 edits).
        assert_eq!(sld(&["bob", "bob"], &["bob"]), 3);
        assert_eq!(sld(&["bob", "bob"], &["bob", "bob"]), 0);
    }

    #[test]
    fn greedy_upper_bounds_exact() {
        let cases: &[(&[&str], &[&str])] = &[
            (X, Y),
            (X, Z),
            (&["aa", "bb", "cc"], &["ab", "bc", "ca"]),
            (&["jonathan", "smith"], &["jon", "smyth", "iii"]),
        ];
        for (a, b) in cases {
            assert!(sld_greedy(a, b) >= sld(a, b), "{a:?} vs {b:?}");
            assert!(nsld_greedy(a, b) >= nsld(a, b) - 1e-12);
        }
    }

    #[test]
    fn within_filters_exactly() {
        let d = nsld(X, Y);
        assert!(nsld_within(X, Y, d + 1e-9, Aligning::Hungarian).is_some());
        assert!(nsld_within(X, Y, d - 1e-9, Aligning::Hungarian).is_none());
        // Length filter path: {"a"} vs a much longer multiset at tiny t.
        assert!(nsld_within(&["a"], &["abcdefgh", "ijklmnop"], 0.1, Aligning::Hungarian).is_none());
    }

    #[test]
    fn within_greedy_is_conservative() {
        // Wherever greedy accepts, the exact distance is also within t.
        let cases: &[(&[&str], &[&str])] = &[(X, Y), (&["ann", "lee"], &["anne", "lee"]), (X, Z)];
        for (a, b) in cases {
            for t in [0.05, 0.1, 0.2, 0.5, 0.9] {
                if let Some(g) = nsld_within(a, b, t, Aligning::Greedy) {
                    let exact = nsld(a, b);
                    assert!(exact <= g + 1e-12);
                    assert!(exact <= t + 1e-12);
                }
            }
        }
    }

    #[test]
    fn nsld_within_unit_threshold_accepts_all() {
        assert!(nsld_within(X, Z, 1.0, Aligning::Hungarian).is_some());
    }
}
