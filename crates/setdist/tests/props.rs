//! Property tests for SLD/NSLD: the paper's Lemmas 4–6, Theorems 2–3, and
//! the soundness of the greedy approximation and the histogram filter.

use proptest::prelude::*;
use tsj_setdist::{
    max_sld_given_nsld, nsld, nsld_from_sld, nsld_greedy, nsld_lower_bound_from_total_lens,
    nsld_within, sld, sld_greedy, sld_lower_bound_sorted_lens, Aligning,
};
use tsj_strdist::nld;

/// Small token multisets over a tiny alphabet (1–4 tokens of 1–6 chars).
fn token_multiset() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(proptest::string::string_regex("[ab]{1,6}").unwrap(), 0..4)
}

fn total_len(tokens: &[String]) -> usize {
    tokens.iter().map(String::len).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lemma 4 components: identity and symmetry of SLD.
    #[test]
    fn sld_identity_and_symmetry(x in token_multiset(), y in token_multiset()) {
        prop_assert_eq!(sld(&x, &x), 0);
        prop_assert_eq!(sld(&x, &y), sld(&y, &x));
    }

    /// Lemma 4: triangle inequality of SLD.
    #[test]
    fn sld_triangle(x in token_multiset(), y in token_multiset(), z in token_multiset()) {
        prop_assert!(sld(&x, &y) + sld(&y, &z) >= sld(&x, &z));
    }

    /// Token order never matters (set semantics).
    #[test]
    fn sld_order_invariant(x in token_multiset(), y in token_multiset()) {
        let mut xr = x.clone();
        xr.reverse();
        prop_assert_eq!(sld(&x, &y), sld(&xr, &y));
    }

    /// Lemma 5: NSLD ∈ [0, 1]; Theorem 2 components: symmetry + triangle.
    #[test]
    fn nsld_metric_axioms(x in token_multiset(), y in token_multiset(), z in token_multiset()) {
        let xy = nsld(&x, &y);
        prop_assert!((0.0..=1.0).contains(&xy));
        prop_assert!((xy - nsld(&y, &x)).abs() < 1e-12);
        let yz = nsld(&y, &z);
        let xz = nsld(&x, &z);
        prop_assert!(xy + yz >= xz - 1e-12,
            "NSLD triangle violated: {xy} + {yz} < {xz} for {x:?} {y:?} {z:?}");
    }

    /// Lemma 6 lower bound (the sound half driving the length filter).
    #[test]
    fn lemma6_lower_bound(x in token_multiset(), y in token_multiset()) {
        let lo = nsld_lower_bound_from_total_lens(total_len(&x), total_len(&y));
        prop_assert!(lo <= nsld(&x, &y) + 1e-12);
    }

    /// Theorem 3: if NSLD(xᵗ, yᵗ) ≤ T (both non-empty), some token pair has
    /// NLD ≤ T. This is the insight enabling the token-domain reduction.
    #[test]
    fn theorem3_token_witness(x in token_multiset(), y in token_multiset(), t in 0.01f64..0.9) {
        if !x.is_empty() && !y.is_empty() && nsld(&x, &y) <= t {
            let witness = x.iter().any(|a| y.iter().any(|b| nld(a, b) <= t));
            prop_assert!(witness,
                "NSLD ≤ {t} but no token pair with NLD ≤ {t}: {x:?} vs {y:?}");
        }
    }

    /// Greedy aligning upper-bounds the exact distance (false negatives
    /// only — Sec. V-B2's precision-1.0 guarantee).
    #[test]
    fn greedy_upper_bounds(x in token_multiset(), y in token_multiset()) {
        prop_assert!(sld_greedy(&x, &y) >= sld(&x, &y));
        prop_assert!(nsld_greedy(&x, &y) >= nsld(&x, &y) - 1e-12);
        // Greedy is still exact on identical inputs.
        prop_assert_eq!(sld_greedy(&x, &x), 0);
    }

    /// `nsld_within` is an exact filter under Hungarian aligning.
    #[test]
    fn within_exact_filter(x in token_multiset(), y in token_multiset(), t in 0.0f64..1.0) {
        let d = nsld(&x, &y);
        match nsld_within(&x, &y, t, Aligning::Hungarian) {
            Some(v) => {
                prop_assert!((v - d).abs() < 1e-12);
                prop_assert!(v <= t);
            }
            None => prop_assert!(d > t),
        }
    }

    /// Histogram lower bound never exceeds the true SLD.
    #[test]
    fn histogram_lower_bound_sound(x in token_multiset(), y in token_multiset()) {
        let mut xl: Vec<u32> = x.iter().map(|s| s.len() as u32).collect();
        let mut yl: Vec<u32> = y.iter().map(|s| s.len() as u32).collect();
        xl.sort_unstable();
        yl.sort_unstable();
        prop_assert!(sld_lower_bound_sorted_lens(&xl, &yl) <= sld(&x, &y));
    }

    /// The SLD budget is the exact crossover point of Definition 4.
    #[test]
    fn sld_budget_crossover(lx in 0usize..64, ly in 0usize..64, t in 0.01f64..0.99) {
        let budget = max_sld_given_nsld(lx, ly, t);
        prop_assert!(nsld_from_sld(budget, lx, ly) <= t + 1e-12);
        prop_assert!(nsld_from_sld(budget + 1, lx, ly) > t);
    }
}
