//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this in-tree shim
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], `bench_function`, `iter`,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: for each benchmark the closure is warmed up for
//! `warm_up_time`, then timed batches run until `measurement_time` elapses
//! (at least `sample_size` iterations). The mean, min, and max per-iteration
//! wall times are printed in a criterion-like one-line format. There are no
//! statistical comparisons with previous runs and no HTML reports.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark harness configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, &id.into(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and overrides.
///
/// Overrides are group-local (stored here, applied per `bench_function`),
/// never written back to the parent `Criterion` — matching real
/// criterion, where a group's settings die with the group.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            cfg.measurement_time = d;
        }
        run_one(&cfg, &format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    cfg: Criterion,
    /// Measured per-iteration times, filled by `iter`.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, repeatedly: warm-up, then sampled measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        // Measurement: at least `sample_size` samples, stop when the
        // measurement budget is spent.
        let deadline = Instant::now() + self.cfg.measurement_time;
        loop {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.cfg.sample_size && Instant::now() >= deadline {
                break;
            }
            if self.samples.len() >= 1_000_000 {
                break; // fast closures: enough precision either way
            }
        }
    }
}

fn run_one(cfg: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        cfg: cfg.clone(),
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples: closure never called iter)");
        return;
    }
    let n = b.samples.len() as u32;
    let mean = b.samples.iter().sum::<Duration>() / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<50} time: [{} {} {}]  ({n} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark entry function from a config expression and a list
/// of target functions (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = fast_cfg();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = fast_cfg();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("a", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn group_overrides_do_not_leak_into_parent() {
        let mut c = fast_cfg();
        let before = c.measurement_time;
        {
            let mut g = c.benchmark_group("slow");
            g.measurement_time(Duration::from_millis(25));
            g.sample_size(3);
            g.bench_function("a", |b| b.iter(|| black_box(1)));
            g.finish();
        }
        assert_eq!(c.measurement_time, before, "group setting leaked");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }

    criterion_group! {
        name = test_benches;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(0u64)));
    }

    #[test]
    fn criterion_group_macro_expands() {
        test_benches();
    }
}
