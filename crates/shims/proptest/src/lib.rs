//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this in-tree shim
//! provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`Strategy`] with `prop_map`/`prop_flat_map`, integer and float range
//! strategies, [`collection::vec`], [`string::string_regex`] (char-class +
//! repetition patterns only), and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (deterministic, no `PROPTEST_CASES` env or persistence file), and
//! there is **no shrinking** — a failing case reports the assertion message
//! only. For this workspace's tests (all seeded and small) that trade-off
//! is acceptable; swap the real crate back in when a registry is available.

use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test's name.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`, `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner configuration (subset of `proptest`'s).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values (subset of `proptest::strategy::Strategy`; no
/// value trees, no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Allowed sizes for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let n = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    use super::{Strategy, TestRng};

    /// Error from [`string_regex`] (pattern not in the supported subset).
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex pattern: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex atom: a set of candidate chars and a repetition range.
    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy over strings matching a simple regex.
    ///
    /// Supported subset (all this workspace uses): concatenations of
    /// `[class]{m,n}`, `[class]{m}`, `[class]`, and literal characters,
    /// where a class lists literal chars and `a-z` ranges.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut s = String::new();
            for atom in &self.atoms {
                let span = (atom.max - atom.min) as u64;
                let n = atom.min
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span + 1) as usize
                    };
                for _ in 0..n {
                    s.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
                }
            }
            s
        }
    }

    /// Parses `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let err = || Error(pattern.to_owned());
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let item = chars.next().ok_or_else(err)?;
                        if item == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next(); // consume '-'
                            let hi = chars.next().ok_or_else(err)?;
                            if hi == ']' {
                                // trailing '-' is a literal
                                set.push(item);
                                set.push('-');
                                break;
                            }
                            let (lo, hi) = (item as u32, hi as u32);
                            if lo > hi {
                                return Err(err());
                            }
                            set.extend((lo..=hi).filter_map(char::from_u32));
                        } else {
                            set.push(item);
                        }
                    }
                    if set.is_empty() {
                        return Err(err());
                    }
                    set
                }
                '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                    return Err(err());
                }
                '\\' => vec![chars.next().ok_or_else(err)?],
                literal => vec![literal],
            };
            // Optional {m,n} / {m} repetition.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                loop {
                    let d = chars.next().ok_or_else(err)?;
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (m.parse().map_err(|_| err())?, n.parse().map_err(|_| err())?),
                    None => {
                        let m = spec.parse().map_err(|_| err())?;
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(err());
            }
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Like `assert!`, inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (deterministically seeded from the test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = &($strat);)*
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate($arg, &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_regex_respects_class_and_bounds() {
        let s = crate::string::string_regex("[a-c]{2,5}").unwrap();
        let mut rng = crate::TestRng::for_test("regex");
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn string_regex_handles_unicode_class() {
        let s = crate::string::string_regex("[a-eé]{0,16}").unwrap();
        let mut rng = crate::TestRng::for_test("unicode");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.chars().count() <= 16);
            assert!(
                v.chars().all(|c| ('a'..='e').contains(&c) || c == 'é'),
                "{v:?}"
            );
        }
    }

    #[test]
    fn string_regex_rejects_unsupported() {
        assert!(crate::string::string_regex("a|b").is_err());
        assert!(crate::string::string_regex("(ab)+").is_err());
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = crate::collection::vec(0u64..10, 3..7);
        let mut rng = crate::TestRng::for_test("vec");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        // Exact-size form (used by the assignment tests).
        let s = crate::collection::vec(0u64..50, 9usize);
        assert_eq!(s.generate(&mut rng).len(), 9);
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let s = (1usize..=6).prop_flat_map(|n| {
            crate::collection::vec(0u64..50, n * n).prop_map(move |data| (n, data))
        });
        let mut rng = crate::TestRng::for_test("flat");
        for _ in 0..100 {
            let (n, data) = s.generate(&mut rng);
            assert_eq!(data.len(), n * n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: generated args satisfy their strategies.
        #[test]
        fn macro_generates_in_range(x in 0u64..100, f in 0.25f64..0.75) {
            prop_assert!(x < 100);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn macro_supports_trailing_comma(
            x in 1usize..4,
        ) {
            prop_assert!((1..4).contains(&x));
        }
    }
}
