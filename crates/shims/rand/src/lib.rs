//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree shim
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] methods
//! `gen`, `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! across runs and platforms, which is all the workspace needs (seeded
//! workload generation and seeded tests). It is **not** the same stream as
//! the real `rand::rngs::StdRng` (ChaCha12), so seeded outputs differ from
//! upstream; nothing in this repository depends on the upstream stream.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (subset of `rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`] (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Span via the unsigned twin: two's-complement width is
                // correct for full-width signed ranges (e.g. -100i8..100),
                // where `end - start` in $t would overflow, and casting
                // through $u avoids sign-extension garbage in the u64.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $u as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == <$u>::MAX as u64 {
                    return lo.wrapping_add(rng.next_u64() as $u as $t);
                }
                lo.wrapping_add(reject_sample(rng, span + 1) as $u as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased `[0, bound)` sampling by rejection (bound > 0).
#[inline]
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// User-facing convenience methods (subset of `rand::Rng`), blanket
/// implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u8);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_handles_full_width_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&v));
            neg |= v < -50;
            pos |= v > 50;
            let w = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = w; // full width: any i8 is in range
            let x = rng.gen_range(-1_000_000i64..1_000_000);
            assert!((-1_000_000..1_000_000).contains(&x));
        }
        assert!(neg && pos, "both tails must be reachable");
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes all");
    }
}
