//! Numeric bounds carrying an `NLD` threshold into `LD` space.
//!
//! These are Lemmas 3, 8, 9 and 10 of the paper. They let the join framework
//! (a) size the PassJoin segmenting scheme, (b) prune candidate token pairs
//! by length alone, and (c) lower-bound the edit cost of *unmatched* tokens
//! during tokenized-string filtering.
//!
//! All functions treat thresholds `t ≥ 1` as "unbounded" (every pair of
//! strings has `NLD ≤ 1` by Lemma 2) and clamp rather than overflow.

/// Lemma 3: for `|y| ≥ |x|`,
/// `1 − |x|/|y| ≤ NLD(x, y) ≤ 2 / (|x|/|y| + 2)`.
///
/// Returns `(lower, upper)`. For two empty strings both bounds are `0`.
pub fn nld_range_from_lens(len_x: usize, len_y: usize) -> (f64, f64) {
    let (short, long) = if len_x <= len_y {
        (len_x as f64, len_y as f64)
    } else {
        (len_y as f64, len_x as f64)
    };
    if long == 0.0 {
        return (0.0, 0.0);
    }
    let ratio = short / long;
    (1.0 - ratio, 2.0 / (ratio + 2.0))
}

/// Lemma 8: the largest `LD(x, y)` compatible with `NLD(x, y) ≤ t`.
///
/// The lemma is stated relative to the *second* argument `len_y`:
///
/// * if `|x| ≤ |y|`: `LD ≤ ⌊2·t·|y| / (2 − t)⌋`,
/// * if `|x| >  |y|`: `LD ≤ ⌊t·|y| / (1 − t)⌋`.
///
/// Callers pass the lengths in the order they know them; the branch is
/// selected from the comparison. `t ≥ 1` in the `|x| > |y|` branch (or any
/// non-finite result) saturates to `usize::MAX / 4`.
pub fn max_ld_given_nld(len_x: usize, len_y: usize, t: f64) -> usize {
    const UNBOUNDED: usize = usize::MAX / 4;
    if t <= 0.0 {
        return 0;
    }
    let ly = len_y as f64;
    let raw = if len_x <= len_y {
        if t >= 2.0 {
            return UNBOUNDED;
        }
        (2.0 * t * ly / (2.0 - t)).floor()
    } else {
        if t >= 1.0 {
            return UNBOUNDED;
        }
        (t * ly / (1.0 - t)).floor()
    };
    if !raw.is_finite() || raw >= UNBOUNDED as f64 {
        UNBOUNDED
    } else {
        raw as usize
    }
}

/// Lemma 9: the shortest `|x|` compatible with `NLD(x, y) ≤ t` when
/// `|x| ≤ |y|`: `⌈(1 − t)·|y|⌉ ≤ |x|`.
///
/// Together with `|x| ≤ |y|` this is the *length condition* used to prune
/// token pairs before any edit-distance work.
pub fn min_len_given_nld(len_y: usize, t: f64) -> usize {
    if t >= 1.0 {
        return 0;
    }
    ((1.0 - t) * len_y as f64).ceil() as usize
}

/// Lemma 10: if `NLD(x, y) > t`, then `LD(x, y)` *exceeds* the returned
/// bound:
///
/// * if `|x| ≤ |y|`: `LD > ⌊t·|y| / (2 − t)⌋`,
/// * if `|x| >  |y|`: `LD > ⌊2·t·|y| / (2 − t)⌋`.
///
/// The TSJ histogram filter charges at least `bound + 1` character edits to
/// every *unmatched* token pair, which is sound because unmatched means the
/// pair's `NLD` exceeded the threshold during candidate generation.
pub fn ld_exceeds_bound_given_nld_exceeds(len_x: usize, len_y: usize, t: f64) -> usize {
    if t <= 0.0 {
        return 0;
    }
    let t = t.min(2.0 - f64::EPSILON);
    let ly = len_y as f64;
    let raw = if len_x <= len_y {
        (t * ly / (2.0 - t)).floor()
    } else {
        (2.0 * t * ly / (2.0 - t)).floor()
    };
    raw as usize
}

/// Number of PassJoin segments for an indexed token of length `len_y` under
/// an `NLD` threshold `t`.
///
/// Lemma 7 requires `U + 1` segments where `U` caps `LD`; under the
/// self-join optimization (Sec. III-G1) only the `|x| ≤ |y|` branch of
/// Lemma 8 applies, "yielding fewer segments":
/// `U = ⌊2·t·|y| / (2 − t)⌋`.
///
/// The segment count is additionally capped at `len_y.max(1)` — a string
/// cannot be partitioned into more non-overlapping pieces than it has
/// characters, and `LD ≥ |y| − |x| ≥ 0` makes larger caps useless.
pub fn segments_for_indexed_len(len_y: usize, t: f64) -> usize {
    let u = max_ld_given_nld(len_y, len_y, t); // |x| ≤ |y| branch
    (u + 1).min(len_y.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levenshtein, nld};

    #[test]
    fn lemma3_brackets_actual_nld() {
        let pairs = [
            ("Thomson", "Thompson"),
            ("Alex", "Alexa"),
            ("a", "abcdef"),
            ("", "abc"),
            ("same", "same"),
        ];
        for (x, y) in pairs {
            let (lo, hi) = nld_range_from_lens(x.chars().count(), y.chars().count());
            let d = nld(x, y);
            assert!(lo <= d + 1e-12, "{x} {y}: lower {lo} > {d}");
            assert!(d <= hi + 1e-12, "{x} {y}: upper {hi} < {d}");
        }
    }

    #[test]
    fn lemma8_cap_is_respected() {
        // For every pair with NLD ≤ t, LD must not exceed the cap.
        let words = ["chan", "chank", "kalan", "alan", "a", "", "obama", "obamma"];
        for t in [0.05, 0.1, 0.2, 0.5, 0.9] {
            for x in words {
                for y in words {
                    let (lx, ly) = (x.len(), y.len());
                    if nld(x, y) <= t {
                        let cap = max_ld_given_nld(lx, ly, t);
                        assert!(
                            levenshtein(x, y) <= cap,
                            "x={x} y={y} t={t}: LD {} > cap {cap}",
                            levenshtein(x, y)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma8_numeric_examples() {
        // t = 0.1, |y| = 10, |x| ≤ |y|: ⌊2·0.1·10 / 1.9⌋ = ⌊1.052…⌋ = 1.
        assert_eq!(max_ld_given_nld(10, 10, 0.1), 1);
        // t = 0.1, |y| = 10, |x| > |y|: ⌊0.1·10 / 0.9⌋ = ⌊1.11…⌋ = 1.
        assert_eq!(max_ld_given_nld(11, 10, 0.1), 1);
        // t = 0.5, |y| = 8, |x| ≤ |y|: ⌊8 / 1.5⌋ = 5.
        assert_eq!(max_ld_given_nld(8, 8, 0.5), 5);
        // Degenerate threshold.
        assert_eq!(max_ld_given_nld(5, 5, 0.0), 0);
    }

    #[test]
    fn lemma8_saturates_instead_of_overflowing() {
        assert!(max_ld_given_nld(10, 5, 1.0) >= usize::MAX / 8);
        assert!(max_ld_given_nld(5, 10, 2.0) >= usize::MAX / 8);
    }

    #[test]
    fn lemma9_length_condition() {
        // t = 0.1, |y| = 10 → |x| ≥ 9.
        assert_eq!(min_len_given_nld(10, 0.1), 9);
        // t = 0.25, |y| = 8 → |x| ≥ 6.
        assert_eq!(min_len_given_nld(8, 0.25), 6);
        // Unbounded threshold admits the empty string.
        assert_eq!(min_len_given_nld(8, 1.0), 0);
    }

    #[test]
    fn lemma9_never_excludes_similar_pairs() {
        let words = ["chan", "chank", "kalan", "alan", "obama", "obamma"];
        for t in [0.1, 0.2, 0.4] {
            for x in words {
                for y in words {
                    if x.len() <= y.len() && nld(x, y) <= t {
                        assert!(
                            x.len() >= min_len_given_nld(y.len(), t),
                            "x={x} y={y} t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma10_lower_bound_is_sound() {
        // For every pair with NLD > t, LD must exceed the bound.
        let words = ["chan", "chank", "kalan", "alan", "a", "zzz", "obama"];
        for t in [0.05, 0.1, 0.2, 0.5] {
            for x in words {
                for y in words {
                    if nld(x, y) > t {
                        let bound = ld_exceeds_bound_given_nld_exceeds(x.len(), y.len(), t);
                        assert!(
                            levenshtein(x, y) > bound,
                            "x={x} y={y} t={t}: LD {} ≤ bound {bound}",
                            levenshtein(x, y)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn segment_count_matches_lemma7_plus_lemma8() {
        // t = 0.1, |y| = 10: U = 1 → 2 segments.
        assert_eq!(segments_for_indexed_len(10, 0.1), 2);
        // Very short tokens cannot be over-partitioned.
        assert_eq!(segments_for_indexed_len(1, 0.9), 1);
        assert_eq!(segments_for_indexed_len(0, 0.1), 1);
        // t = 0 still requires one segment (exact match probing).
        assert_eq!(segments_for_indexed_len(7, 0.0), 1);
    }
}
