//! Jaro and Jaro–Winkler similarities.
//!
//! These are *not* part of the paper's contribution — they are the
//! token-matching similarities used by the related-work measures the paper
//! compares against (Sec. IV: SoftTfIdf of Cohen et al. matches tokens whose
//! Jaro–Winkler similarity clears a threshold). The `tsj-fuzzyset` crate
//! builds those measures on top of this module.
//!
//! Note the paper's observation that Jaro–Winkler violates the triangle
//! inequality, which is one reason SoftTfIdf is non-metric; the property
//! tests in `tsj-fuzzyset` demonstrate a concrete violation.

/// Jaro similarity in `[0, 1]`; `1` means identical, `0` means no matching
/// characters within the Jaro window.
///
/// # Examples
///
/// ```
/// use tsj_strdist::jaro;
/// assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
/// assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
/// assert_eq!(jaro("", ""), 1.0);
/// assert_eq!(jaro("abc", ""), 0.0);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    jaro_chars(&av, &bv)
}

fn jaro_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched: Vec<usize> = Vec::new(); // indices into `a`, in order
    let mut b_matched: Vec<usize> = Vec::new(); // indices into `b`, in order
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == *ca {
                b_taken[j] = true;
                matches += 1;
                a_matched.push(i);
                b_matched.push(j);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: matched characters compared in order of appearance.
    b_matched.sort_unstable();
    let transpositions = a_matched
        .iter()
        .zip(&b_matched)
        .filter(|(i, j)| a[**i] != b[**j])
        .count();
    let m = matches as f64;
    let t = transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by a shared prefix of up to four
/// characters, with the standard scaling factor `p = 0.1`.
///
/// ```
/// use tsj_strdist::jaro_winkler;
/// assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961111).abs() < 1e-5);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const SCALING: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let j = jaro_chars(&av, &bv);
    let prefix = av
        .iter()
        .zip(&bv)
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * SCALING * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_reference_values() {
        assert!((jaro("MARTHA", "MARHTA") - 17.0 / 18.0).abs() < 1e-9);
        assert!((jaro("DWAYNE", "DUANE") - 0.822222).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961111).abs() < 1e-5);
        assert!((jaro_winkler("DIXON", "DICKSONX") - 0.813333).abs() < 1e-5);
    }

    #[test]
    fn bounds_and_identity() {
        for (a, b) in [("abc", "abc"), ("", ""), ("x", "y"), ("ab", "ba")] {
            let j = jaro(a, b);
            assert!((0.0..=1.0).contains(&j), "{a} {b} -> {j}");
            let jw = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&jw));
            assert!(jw >= j - 1e-12, "winkler never decreases jaro");
        }
        assert_eq!(jaro("hello", "hello"), 1.0);
        assert_eq!(jaro_winkler("hello", "hello"), 1.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("MARTHA", "MARHTA"), ("DIXON", "DICKSONX"), ("ab", "")] {
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }
}
