//! Levenshtein Distance (Definition 1 of the paper).
//!
//! `LD(x, y)` is the minimum number of character-level edit operations
//! (insertion, deletion, substitution) transforming `x` into `y`. It is a
//! metric (Lemma 1).
//!
//! Three algorithms are provided:
//!
//! * [`levenshtein`] / [`levenshtein_slices`]: the classic two-row dynamic
//!   program, `O(|x|·|y|)` time, `O(min(|x|,|y|))` space. `levenshtein_slices`
//!   is the generic (`T: Eq`) reference; the string wrapper dispatches to the
//!   bit-parallel kernel below.
//! * [`crate::myers`]: Myers' bit-parallel computation — entire DP columns
//!   packed into `u64` words, `O(⌈m/64⌉·n)` word operations. This is what
//!   [`levenshtein_within`] / [`levenshtein_within_slices`] run on hot paths.
//! * [`levenshtein_within_slices_banded`]: Ukkonen's banded dynamic program
//!   that answers "is `LD ≤ k`, and if so what is it?" in `O((2k+1)·|x|)`
//!   time. Retained as the scalar reference the differential tests pin the
//!   bit-parallel kernels against, and as the dispatch target when the band
//!   is much narrower than the pattern (very long inputs, tiny `k`).

use crate::myers::{self, PeqUnit};

/// A value larger than any real distance, used as the out-of-band sentinel
/// in the banded DP. Chosen so `SENTINEL + 1` cannot overflow.
const SENTINEL: usize = usize::MAX / 2;

/// Above 64 pattern units the bit-parallel kernel costs `⌈m/64⌉` word steps
/// per text unit versus `2k+1` cell steps for the banded DP; the crossover
/// measured on the `distances` bench sits near `m ≈ 24·(2k+1)`.
const MYERS_BLOCK_ADVANTAGE: usize = 24;

/// Levenshtein distance between two strings, counting edits over Unicode
/// scalar values.
///
/// ASCII inputs are compared byte-wise without allocating. Both paths run
/// on the bit-parallel kernels of [`crate::myers`].
///
/// # Examples
///
/// ```
/// use tsj_strdist::levenshtein;
/// assert_eq!(levenshtein("Thomson", "Thompson"), 1);
/// assert_eq!(levenshtein("Alex", "Alexa"), 1);
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        myers::distance_slices(a.as_bytes(), b.as_bytes())
    } else {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        myers::distance_slices(&av, &bv)
    }
}

/// Levenshtein distance over arbitrary comparable items.
///
/// The scalar two-row reference: works for any `T: Eq` (no PEQ-key
/// requirement) and anchors the differential tests for the bit-parallel
/// kernels. Unit-like slices on hot paths go through
/// [`crate::myers::distance_slices`] instead.
pub fn levenshtein_slices<T: Eq>(a: &[T], b: &[T]) -> usize {
    // Keep the row as short as possible: iterate over the longer slice.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    // Trim the common prefix and suffix; names in rings share long runs.
    let prefix = short.iter().zip(long).take_while(|(x, y)| x == y).count();
    let (short, long) = (&short[prefix..], &long[prefix..]);
    let suffix = short
        .iter()
        .rev()
        .zip(long.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let (short, long) = (&short[..short.len() - suffix], &long[..long.len() - suffix]);
    if short.is_empty() {
        return long.len();
    }

    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut diag = row[0]; // dp[i][0]
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Thresholded Levenshtein distance: `Some(LD(a, b))` when `LD(a, b) ≤ k`,
/// `None` otherwise.
///
/// # Examples
///
/// ```
/// use tsj_strdist::levenshtein_within;
/// assert_eq!(levenshtein_within("Thomson", "Thompson", 1), Some(1));
/// assert_eq!(levenshtein_within("Thomson", "Thompson", 0), None);
/// assert_eq!(levenshtein_within("abc", "xyz", 2), None);
/// ```
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    if a.is_ascii() && b.is_ascii() {
        levenshtein_within_slices(a.as_bytes(), b.as_bytes(), k)
    } else {
        // Apply the length-gap filter before collecting scalar values: a
        // `chars().count()` scan is allocation-free, and most candidate
        // pairs a join probes die on this check alone.
        let (la, lb) = (a.chars().count(), b.chars().count());
        if la.abs_diff(lb) > k {
            return None;
        }
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        levenshtein_within_slices(&av, &bv, k)
    }
}

/// Thresholded Levenshtein distance over unit slices: `Some(LD(a, b))` when
/// `LD(a, b) ≤ k`, `None` otherwise.
///
/// Dispatches to the bit-parallel kernels of [`crate::myers`] — single
/// `u64` block for patterns ≤ 64 units, chained blocks beyond — and falls
/// back to the scalar banded DP only when the band `2k+1` is much narrower
/// than the pattern (very long inputs, tiny `k`), where visiting
/// `O((2k+1))` cells beats sweeping `⌈m/64⌉` words per text unit.
pub fn levenshtein_within_slices<T: PeqUnit>(a: &[T], b: &[T], k: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > k {
        return None;
    }
    if short.is_empty() {
        return Some(long.len()); // already known ≤ k
    }
    if k == 0 {
        // Same length (checked above) and must be equal.
        return (short == long).then_some(0);
    }

    // Trim common prefix/suffix; the kernels then cover the differing core.
    let (short, long) = trim_common(short, long);
    if short.is_empty() {
        return Some(long.len());
    }

    let m = short.len();
    if m <= 64 || m <= MYERS_BLOCK_ADVANTAGE * (2 * k + 1) {
        myers::within_pretrimmed(short, long, k)
    } else {
        banded_pretrimmed(short, long, k)
    }
}

/// Banded (Ukkonen) thresholded Levenshtein distance over slices.
///
/// Runs in `O((2k+1)·max(|a|,|b|))` time: only cells within `k` of the main
/// diagonal can hold a value `≤ k`, so the dynamic program visits a band of
/// width `2k+1` per row and abandons the computation as soon as the whole
/// band exceeds `k`.
///
/// This is the scalar reference implementation;
/// [`levenshtein_within_slices`] reaches it only for patterns where the
/// band is much narrower than the pattern. It stays public so differential
/// tests and benchmarks can pin the bit-parallel kernels against it, and
/// for element types that are `Eq` but not [`PeqUnit`].
pub fn levenshtein_within_slices_banded<T: Eq>(a: &[T], b: &[T], k: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > k {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    if k == 0 {
        return (short == long).then_some(0);
    }
    let (short, long) = trim_common(short, long);
    if short.is_empty() {
        return Some(long.len());
    }
    banded_pretrimmed(short, long, k)
}

/// Trims the common prefix and suffix (free edits) off both slices.
fn trim_common<'a, T: Eq>(short: &'a [T], long: &'a [T]) -> (&'a [T], &'a [T]) {
    let prefix = short.iter().zip(long).take_while(|(x, y)| x == y).count();
    let (short, long) = (&short[prefix..], &long[prefix..]);
    let suffix = short
        .iter()
        .rev()
        .zip(long.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&short[..short.len() - suffix], &long[..long.len() - suffix])
}

/// The banded DP core on a pre-trimmed pair: `short` is non-empty, no
/// longer than `long`, the length gap is ≤ `k`, and `k ≥ 1`.
fn banded_pretrimmed<T: Eq>(short: &[T], long: &[T], k: usize) -> Option<usize> {
    let n = long.len(); // rows
    let m = short.len(); // columns
    debug_assert!(n >= m);

    // row[j] holds dp[i][j] for the current row `i`, but only within the
    // band `j ∈ [i−k, i+k]`; cells outside carry `SENTINEL`.
    let mut row: Vec<usize> = vec![SENTINEL; m + 1];
    let init_hi = k.min(m);
    for (j, cell) in row.iter_mut().enumerate().take(init_hi + 1) {
        *cell = j;
    }

    for (i, lc) in long.iter().enumerate() {
        let lo = (i + 1).saturating_sub(k);
        let hi = (i + 1 + k).min(m);
        let mut diag = if lo == 0 { row[0] } else { row[lo - 1] };
        if lo == 0 {
            row[0] = i + 1;
        } else {
            // The cell left of the band must read as "unreachable".
            row[lo - 1] = SENTINEL;
        }
        let mut best = SENTINEL;
        for j in lo.max(1)..=hi {
            let cost = usize::from(*lc != short[j - 1]);
            let next = (diag + cost).min(row[j - 1] + 1).min(row[j] + 1);
            diag = row[j];
            row[j] = next;
            best = best.min(next);
        }
        if lo == 0 {
            best = best.min(row[0]);
        }
        // The cell just right of the band (consumed as `diag` next row) must
        // also read as unreachable.
        if hi < m {
            row[hi + 1] = SENTINEL;
        }
        if best > k {
            return None; // every diagonal already exceeded the threshold
        }
    }
    let d = row[m];
    (d <= k).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(levenshtein("Thomson", "Thompson"), 1);
        assert_eq!(levenshtein("Alex", "Alexa"), 1);
    }

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
    }

    #[test]
    fn unicode_edits_count_scalars_not_bytes() {
        // 'ä' is two bytes in UTF-8 but one edit away from 'a'.
        assert_eq!(levenshtein("bär", "bar"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn within_agrees_with_full_when_inside_threshold() {
        let cases = [
            ("chan", "chank"),
            ("kalan", "alan"),
            ("obama", "obamma"),
            ("barak", "burak"),
            ("", "xyz"),
            ("same", "same"),
        ];
        for (a, b) in cases {
            let d = levenshtein(a, b);
            for k in d..d + 3 {
                assert_eq!(levenshtein_within(a, b, k), Some(d), "{a:?} vs {b:?} k={k}");
            }
            if d > 0 {
                assert_eq!(levenshtein_within(a, b, d - 1), None, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn within_zero_threshold_is_equality() {
        assert_eq!(levenshtein_within("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_within("abc", "abd", 0), None);
        assert_eq!(levenshtein_within("abc", "abcd", 0), None);
    }

    #[test]
    fn within_length_gap_prunes_immediately() {
        assert_eq!(levenshtein_within("ab", "abcdefgh", 3), None);
        // Non-ASCII inputs take the hoisted `chars().count()` gap check.
        assert_eq!(levenshtein_within("äb", "äbcdefgh", 3), None);
        assert_eq!(levenshtein_within("日本", "日本語語語語", 3), None);
    }

    #[test]
    fn within_handles_band_edges() {
        // Band width 3 (k=1) with strings differing only near the ends.
        assert_eq!(levenshtein_within("xabcdef", "abcdef", 1), Some(1));
        assert_eq!(levenshtein_within("abcdef", "abcdefx", 1), Some(1));
        assert_eq!(levenshtein_within("xabcdefy", "abcdef", 2), Some(2));
        assert_eq!(levenshtein_within("xabcdefy", "abcdef", 1), None);
    }

    #[test]
    fn slices_work_over_token_ids() {
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 9, 3, 4, 5];
        assert_eq!(levenshtein_slices(&a, &b), 2);
        assert_eq!(levenshtein_within_slices(&a, &b, 2), Some(2));
        assert_eq!(levenshtein_within_slices(&a, &b, 1), None);
    }

    #[test]
    fn banded_reference_stays_available_for_plain_eq_types() {
        // `levenshtein_within_slices_banded` keeps the `T: Eq` bound, so
        // non-PeqUnit element types still have a thresholded entry point.
        #[derive(PartialEq, Eq)]
        struct Tok(&'static str);
        let a = [Tok("new"), Tok("york")];
        let b = [Tok("new"), Tok("pork")];
        assert_eq!(levenshtein_within_slices_banded(&a, &b, 1), Some(1));
        assert_eq!(levenshtein_within_slices_banded(&a, &b, 0), None);
    }

    /// Reference implementation: full-matrix DP, used to cross-check the
    /// optimized variants on exhaustive small alphabets.
    fn reference(a: &[u8], b: &[u8]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for (i, r) in dp.iter_mut().enumerate() {
            r[0] = i;
        }
        for (j, cell) in dp[0].iter_mut().enumerate() {
            *cell = j;
        }
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                let cost = usize::from(a[i - 1] != b[j - 1]);
                dp[i][j] = (dp[i - 1][j - 1] + cost)
                    .min(dp[i - 1][j] + 1)
                    .min(dp[i][j - 1] + 1);
            }
        }
        dp[a.len()][b.len()]
    }

    #[test]
    fn exhaustive_small_alphabet_cross_check() {
        // All pairs of strings of length ≤ 4 over {a, b}: 31 × 31 pairs,
        // cross-checked against the full-matrix reference on every code
        // path: the scalar DPs, the dispatching `levenshtein_within_slices`,
        // and the bit-parallel kernel directly.
        let mut words: Vec<Vec<u8>> = vec![vec![]];
        for len in 1..=4 {
            for idx in 0..(1u32 << len) {
                let w: Vec<u8> = (0..len)
                    .map(|i| if idx >> i & 1 == 1 { b'b' } else { b'a' })
                    .collect();
                words.push(w);
            }
        }
        for x in &words {
            for y in &words {
                let expect = reference(x, y);
                assert_eq!(levenshtein_slices(x, y), expect);
                assert_eq!(crate::myers::distance_slices(x, y), expect);
                for k in 0..=5 {
                    let want = (expect <= k).then_some(expect);
                    assert_eq!(
                        levenshtein_within_slices(x, y, k),
                        want,
                        "dispatch {x:?} {y:?} k={k}"
                    );
                    assert_eq!(
                        levenshtein_within_slices_banded(x, y, k),
                        want,
                        "banded {x:?} {y:?} k={k}"
                    );
                    assert_eq!(
                        crate::myers::within_slices(x, y, k),
                        want,
                        "myers {x:?} {y:?} k={k}"
                    );
                }
            }
        }
    }

    /// Deterministic xorshift so the multi-block cross-check needs no RNG
    /// dependency and reproduces exactly.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn multi_block_cross_check_against_reference() {
        // Pseudo-random pairs long enough that, after prefix/suffix
        // trimming, the pattern still spans several 64-bit blocks — the
        // carry-chain path the exhaustive small-alphabet test cannot reach.
        let mut rng = XorShift(0x1CDE_2019_D5E7_A11E);
        for round in 0..60 {
            let la = 65 + (rng.next() % 140) as usize;
            let lb = 65 + (rng.next() % 140) as usize;
            let a: Vec<u8> = (0..la).map(|_| b'a' + (rng.next() % 3) as u8).collect();
            let b: Vec<u8> = (0..lb).map(|_| b'a' + (rng.next() % 3) as u8).collect();
            let expect = reference(&a, &b);
            assert_eq!(
                crate::myers::distance_slices(&a, &b),
                expect,
                "round {round}"
            );
            for k in [0usize, 1, 2, 5, 9, 14, 40, 200] {
                let want = (expect <= k).then_some(expect);
                assert_eq!(
                    crate::myers::within_slices(&a, &b, k),
                    want,
                    "myers round {round} k={k}"
                );
                assert_eq!(
                    levenshtein_within_slices(&a, &b, k),
                    want,
                    "dispatch round {round} k={k}"
                );
                assert_eq!(
                    levenshtein_within_slices_banded(&a, &b, k),
                    want,
                    "banded round {round} k={k}"
                );
            }
        }
    }

    #[test]
    fn multi_block_cross_check_interned_units() {
        // Same carry-chain coverage with token ids ≥ 256, forcing the
        // interned PEQ map instead of the dense byte table.
        let mut rng = XorShift(0x5EED_CAFE_F00D_0001);
        for round in 0..30 {
            let la = 65 + (rng.next() % 80) as usize;
            let lb = 65 + (rng.next() % 80) as usize;
            let a: Vec<u32> = (0..la).map(|_| 70_000 + (rng.next() % 5) as u32).collect();
            let b: Vec<u32> = (0..lb).map(|_| 70_000 + (rng.next() % 5) as u32).collect();
            let expect = levenshtein_slices(&a, &b);
            for k in [0usize, 2, 6, 11, 50, 200] {
                let want = (expect <= k).then_some(expect);
                assert_eq!(
                    crate::myers::within_slices(&a, &b, k),
                    want,
                    "myers round {round} k={k}"
                );
                assert_eq!(
                    levenshtein_within_slices(&a, &b, k),
                    want,
                    "dispatch round {round} k={k}"
                );
            }
        }
    }
}
