//! Levenshtein Distance (Definition 1 of the paper).
//!
//! `LD(x, y)` is the minimum number of character-level edit operations
//! (insertion, deletion, substitution) transforming `x` into `y`. It is a
//! metric (Lemma 1).
//!
//! Two algorithms are provided:
//!
//! * [`levenshtein`] / [`levenshtein_slices`]: the classic two-row dynamic
//!   program, `O(|x|·|y|)` time, `O(min(|x|,|y|))` space.
//! * [`levenshtein_within`] / [`levenshtein_within_slices`]: Ukkonen's banded
//!   dynamic program that answers "is `LD ≤ k`, and if so what is it?" in
//!   `O((2k+1)·|x|)` time. The join framework always knows a threshold, so
//!   this is the variant used on hot paths.

/// A value larger than any real distance, used as the out-of-band sentinel
/// in the banded DP. Chosen so `SENTINEL + 1` cannot overflow.
const SENTINEL: usize = usize::MAX / 2;

/// Levenshtein distance between two strings, counting edits over Unicode
/// scalar values.
///
/// ASCII inputs are compared byte-wise without allocating.
///
/// # Examples
///
/// ```
/// use tsj_strdist::levenshtein;
/// assert_eq!(levenshtein("Thomson", "Thompson"), 1);
/// assert_eq!(levenshtein("Alex", "Alexa"), 1);
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        levenshtein_slices(a.as_bytes(), b.as_bytes())
    } else {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        levenshtein_slices(&av, &bv)
    }
}

/// Levenshtein distance over arbitrary comparable items.
///
/// Used directly by the tokenized-string layer where tokens have already
/// been interned to ids, and by the string wrappers above.
pub fn levenshtein_slices<T: Eq>(a: &[T], b: &[T]) -> usize {
    // Keep the row as short as possible: iterate over the longer slice.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    // Trim the common prefix and suffix; names in rings share long runs.
    let prefix = short.iter().zip(long).take_while(|(x, y)| x == y).count();
    let (short, long) = (&short[prefix..], &long[prefix..]);
    let suffix = short
        .iter()
        .rev()
        .zip(long.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let (short, long) = (&short[..short.len() - suffix], &long[..long.len() - suffix]);
    if short.is_empty() {
        return long.len();
    }

    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut diag = row[0]; // dp[i][0]
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Thresholded Levenshtein distance: `Some(LD(a, b))` when `LD(a, b) ≤ k`,
/// `None` otherwise.
///
/// # Examples
///
/// ```
/// use tsj_strdist::levenshtein_within;
/// assert_eq!(levenshtein_within("Thomson", "Thompson", 1), Some(1));
/// assert_eq!(levenshtein_within("Thomson", "Thompson", 0), None);
/// assert_eq!(levenshtein_within("abc", "xyz", 2), None);
/// ```
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    if a.is_ascii() && b.is_ascii() {
        levenshtein_within_slices(a.as_bytes(), b.as_bytes(), k)
    } else {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        levenshtein_within_slices(&av, &bv, k)
    }
}

/// Banded (Ukkonen) thresholded Levenshtein distance over slices.
///
/// Runs in `O((2k+1)·max(|a|,|b|))` time: only cells within `k` of the main
/// diagonal can hold a value `≤ k`, so the dynamic program visits a band of
/// width `2k+1` per row and abandons the computation as soon as the whole
/// band exceeds `k`.
pub fn levenshtein_within_slices<T: Eq>(a: &[T], b: &[T], k: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > k {
        return None;
    }
    if short.is_empty() {
        return Some(long.len()); // already known ≤ k
    }
    if k == 0 {
        // Same length (checked above) and must be equal.
        return (short == long).then_some(0);
    }

    // Trim common prefix/suffix; the band then covers the differing core.
    let prefix = short.iter().zip(long).take_while(|(x, y)| x == y).count();
    let (short, long) = (&short[prefix..], &long[prefix..]);
    let suffix = short
        .iter()
        .rev()
        .zip(long.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let (short, long) = (&short[..short.len() - suffix], &long[..long.len() - suffix]);
    if short.is_empty() {
        return Some(long.len());
    }

    let n = long.len(); // rows
    let m = short.len(); // columns
    debug_assert!(n >= m);

    // row[j] holds dp[i][j] for the current row `i`, but only within the
    // band `j ∈ [i−k, i+k]`; cells outside carry `SENTINEL`.
    let mut row: Vec<usize> = vec![SENTINEL; m + 1];
    let init_hi = k.min(m);
    for (j, cell) in row.iter_mut().enumerate().take(init_hi + 1) {
        *cell = j;
    }

    for (i, lc) in long.iter().enumerate() {
        let lo = (i + 1).saturating_sub(k);
        let hi = (i + 1 + k).min(m);
        let mut diag = if lo == 0 { row[0] } else { row[lo - 1] };
        if lo == 0 {
            row[0] = i + 1;
        } else {
            // The cell left of the band must read as "unreachable".
            row[lo - 1] = SENTINEL;
        }
        let mut best = SENTINEL;
        for j in lo.max(1)..=hi {
            let cost = usize::from(*lc != short[j - 1]);
            let next = (diag + cost).min(row[j - 1] + 1).min(row[j] + 1);
            diag = row[j];
            row[j] = next;
            best = best.min(next);
        }
        if lo == 0 {
            best = best.min(row[0]);
        }
        // The cell just right of the band (consumed as `diag` next row) must
        // also read as unreachable.
        if hi < m {
            row[hi + 1] = SENTINEL;
        }
        if best > k {
            return None; // every diagonal already exceeded the threshold
        }
    }
    let d = row[m];
    (d <= k).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(levenshtein("Thomson", "Thompson"), 1);
        assert_eq!(levenshtein("Alex", "Alexa"), 1);
    }

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
    }

    #[test]
    fn unicode_edits_count_scalars_not_bytes() {
        // 'ä' is two bytes in UTF-8 but one edit away from 'a'.
        assert_eq!(levenshtein("bär", "bar"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn within_agrees_with_full_when_inside_threshold() {
        let cases = [
            ("chan", "chank"),
            ("kalan", "alan"),
            ("obama", "obamma"),
            ("barak", "burak"),
            ("", "xyz"),
            ("same", "same"),
        ];
        for (a, b) in cases {
            let d = levenshtein(a, b);
            for k in d..d + 3 {
                assert_eq!(levenshtein_within(a, b, k), Some(d), "{a:?} vs {b:?} k={k}");
            }
            if d > 0 {
                assert_eq!(levenshtein_within(a, b, d - 1), None, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn within_zero_threshold_is_equality() {
        assert_eq!(levenshtein_within("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_within("abc", "abd", 0), None);
        assert_eq!(levenshtein_within("abc", "abcd", 0), None);
    }

    #[test]
    fn within_length_gap_prunes_immediately() {
        assert_eq!(levenshtein_within("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn within_handles_band_edges() {
        // Band width 3 (k=1) with strings differing only near the ends.
        assert_eq!(levenshtein_within("xabcdef", "abcdef", 1), Some(1));
        assert_eq!(levenshtein_within("abcdef", "abcdefx", 1), Some(1));
        assert_eq!(levenshtein_within("xabcdefy", "abcdef", 2), Some(2));
        assert_eq!(levenshtein_within("xabcdefy", "abcdef", 1), None);
    }

    #[test]
    fn slices_work_over_token_ids() {
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 9, 3, 4, 5];
        assert_eq!(levenshtein_slices(&a, &b), 2);
        assert_eq!(levenshtein_within_slices(&a, &b, 2), Some(2));
        assert_eq!(levenshtein_within_slices(&a, &b, 1), None);
    }

    /// Reference implementation: full-matrix DP, used to cross-check the
    /// optimized variants on exhaustive small alphabets.
    fn reference(a: &[u8], b: &[u8]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for (i, r) in dp.iter_mut().enumerate() {
            r[0] = i;
        }
        for (j, cell) in dp[0].iter_mut().enumerate() {
            *cell = j;
        }
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                let cost = usize::from(a[i - 1] != b[j - 1]);
                dp[i][j] = (dp[i - 1][j - 1] + cost)
                    .min(dp[i - 1][j] + 1)
                    .min(dp[i][j - 1] + 1);
            }
        }
        dp[a.len()][b.len()]
    }

    #[test]
    fn exhaustive_small_alphabet_cross_check() {
        // All pairs of strings of length ≤ 4 over {a, b}: 31 × 31 pairs.
        let mut words: Vec<Vec<u8>> = vec![vec![]];
        for len in 1..=4 {
            for idx in 0..(1u32 << len) {
                let w: Vec<u8> = (0..len)
                    .map(|i| if idx >> i & 1 == 1 { b'b' } else { b'a' })
                    .collect();
                words.push(w);
            }
        }
        for x in &words {
            for y in &words {
                let expect = reference(x, y);
                assert_eq!(levenshtein_slices(x, y), expect);
                for k in 0..=5 {
                    let got = levenshtein_within_slices(x, y, k);
                    if expect <= k {
                        assert_eq!(got, Some(expect), "{x:?} {y:?} k={k}");
                    } else {
                        assert_eq!(got, None, "{x:?} {y:?} k={k}");
                    }
                }
            }
        }
    }
}
