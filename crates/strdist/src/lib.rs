//! String distances underpinning the Tokenized-String Joiner.
//!
//! This crate implements the character-level machinery of Sec. II-C of
//! *Scalable Similarity Joins of Tokenized Strings* (ICDE 2019):
//!
//! * [`levenshtein()`] — the Levenshtein Distance `LD` (Definition 1),
//!   including the thresholded variant [`levenshtein_within`] that is the
//!   workhorse of candidate verification. Both run on the bit-parallel
//!   kernels of [`myers`] (Myers 1999), with Ukkonen's `O((2k+1)·n)` banded
//!   DP retained as [`levenshtein_within_slices_banded`] for reference and
//!   for the narrow-band long-string regime.
//! * [`nld()`] — the Normalized Levenshtein Distance `NLD` of Li & Liu
//!   (Definition 2), `NLD(x, y) = 2·LD / (|x| + |y| + LD)`, which is a metric
//!   on `[0, 1]`.
//! * [`bounds`] — the numeric relationships of Lemmas 3, 8, 9 and 10 that the
//!   join framework uses to carry an `NLD` threshold into `LD` space
//!   (segment counts, length conditions, pruning lower bounds).
//! * [`jaro()`] — Jaro and Jaro–Winkler similarities, needed by the
//!   related-work measures (SoftTfIdf-style matching) that the paper
//!   compares against in Fig. 6.
//!
//! All distances operate on Unicode scalar values (`char`s); ASCII inputs
//! take an allocation-free fast path.

pub mod bounds;
pub mod jaro;
pub mod levenshtein;
pub mod myers;
pub mod nld;

pub use bounds::{
    ld_exceeds_bound_given_nld_exceeds, max_ld_given_nld, min_len_given_nld, nld_range_from_lens,
    segments_for_indexed_len,
};
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{
    levenshtein, levenshtein_slices, levenshtein_within, levenshtein_within_slices,
    levenshtein_within_slices_banded,
};
pub use myers::PeqUnit;
pub use nld::{nld, nld_from_ld, nld_within};

/// Returns the number of Unicode scalar values in `s`.
///
/// The paper's `|x|` is the length of the string `x`; throughout this
/// workspace lengths are counted in `char`s so that multi-byte names are
/// treated the same way a human reader of the paper would count them.
#[inline]
pub fn char_len(s: &str) -> usize {
    if s.is_ascii() {
        s.len()
    } else {
        s.chars().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_len_ascii_and_unicode() {
        assert_eq!(char_len(""), 0);
        assert_eq!(char_len("abc"), 3);
        assert_eq!(char_len("naïve"), 5);
        assert_eq!(char_len("héllo wörld"), 11);
    }
}
