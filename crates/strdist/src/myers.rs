//! Bit-parallel Levenshtein distance (Myers 1999, Hyyrö 2003).
//!
//! The classic dynamic program computes one cell at a time; Myers'
//! algorithm packs a whole column of the DP matrix into machine words and
//! advances it with ~15 word operations per text unit, so a pattern of up
//! to 64 units costs `O(n)` word steps instead of `O(m·n)` cell steps.
//! This is the "Faster Algorithm of String Comparison" line of related
//! work the verification hot path leans on: `levenshtein_within` and
//! `levenshtein_within_slices` dispatch here transparently, so the join
//! verifiers (`tsj::verify`, `tsj-passjoin`, `tsj-fuzzyset`) inherit the
//! speedup with no call-site changes.
//!
//! Three kernels:
//!
//! * [`single block`](self) — patterns of ≤ 64 units in one `u64` column
//!   (the common case: names and name tokens).
//! * multi-block — longer patterns as `⌈m/64⌉` chained words with
//!   carry propagation between blocks (Hyyrö's block formulation, the one
//!   production aligners use).
//! * the thresholded variant — both kernels take the caller's edit budget
//!   `k` and abandon the column sweep as soon as
//!   `D(m, j) − (n − j) > k` (no suffix of the text can win back more
//!   than one edit per remaining unit), the cut-off the length filter
//!   already licenses.
//!
//! # Pattern-equality (PEQ) table
//!
//! Each kernel needs `Peq[c]` — the bitmask of pattern positions equal to
//! the text unit `c` — in `O(1)` per text unit. Two strategies, chosen per
//! call from the pattern alone:
//!
//! * **Dense table** when every pattern unit's key is < 256 (ASCII bytes,
//!   Latin-1 `char`s, small token ids): a 256-entry array indexed
//!   directly.
//! * **Interning map** otherwise (general Unicode scalars, large token
//!   ids): the pattern's distinct keys in a small sorted array, binary
//!   searched per text unit — `O(log distinct)` with distinct ≤ m.
//!
//! Units plug in through [`PeqUnit`], implemented for the integer
//! primitives and `char`.

/// A slice element the bit-parallel kernels can build a PEQ table over.
///
/// `peq_key` must be *injective*: distinct units map to distinct keys, so
/// that bitmask equality coincides with unit equality. Implemented for the
/// integer primitives and `char` (every type the tokenized-string layer
/// compares: ASCII bytes, Unicode scalars, token ids).
pub trait PeqUnit: Copy + Eq {
    /// The unit's identity as a table key.
    fn peq_key(self) -> u64;
}

macro_rules! peq_unit_as_u64 {
    ($($t:ty),*) => {$(
        impl PeqUnit for $t {
            #[inline]
            fn peq_key(self) -> u64 {
                // Plain `as` cast: injective for every listed type (sign
                // extension keeps distinct negatives distinct).
                self as u64
            }
        }
    )*};
}

peq_unit_as_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, char, bool);

/// An edit budget larger than any real distance: with `k = UNBOUNDED` the
/// cut-off never fires and the kernels compute the exact distance.
/// `usize::MAX / 2` so `k + remaining` cannot overflow.
const UNBOUNDED: usize = usize::MAX / 2;

/// Trims the common prefix and suffix (free edits) off both slices.
fn trim_common<'a, T: Eq>(a: &'a [T], b: &'a [T]) -> (&'a [T], &'a [T]) {
    let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// Exact Levenshtein distance over unit slices, always bit-parallel.
///
/// # Examples
///
/// ```
/// use tsj_strdist::myers;
/// assert_eq!(myers::distance_slices(b"kitten", b"sitting"), 3);
/// assert_eq!(myers::distance_slices(&[1u32, 2, 3], &[1, 9, 3, 4]), 2);
/// ```
pub fn distance_slices<T: PeqUnit>(a: &[T], b: &[T]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (s, t) = trim_common(short, long);
    if s.is_empty() {
        return t.len();
    }
    within_pretrimmed(s, t, UNBOUNDED).expect("unbounded cut-off cannot fire")
}

/// Thresholded Levenshtein distance over unit slices, always bit-parallel:
/// `Some(LD)` when `LD ≤ k`, `None` otherwise.
///
/// [`crate::levenshtein_within_slices`] dispatches here for every pattern
/// the kernels handle efficiently; this standalone entry point exists so
/// differential tests and benchmarks can pin the bit-parallel kernels
/// against the scalar DPs directly.
///
/// # Examples
///
/// ```
/// use tsj_strdist::myers;
/// assert_eq!(myers::within_slices(b"thomson", b"thompson", 1), Some(1));
/// assert_eq!(myers::within_slices(b"abc", b"xyz", 2), None);
/// ```
pub fn within_slices<T: PeqUnit>(a: &[T], b: &[T], k: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > k {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    if k == 0 {
        return (short == long).then_some(0);
    }
    let (s, t) = trim_common(short, long);
    if s.is_empty() {
        return Some(t.len());
    }
    within_pretrimmed(s, t, k)
}

/// Kernel dispatch on a pre-trimmed pair: `s` is the pattern (shorter,
/// non-empty, ≤ `t` in length), the length gap is ≤ `k`, and `k ≥ 1`.
pub(crate) fn within_pretrimmed<T: PeqUnit>(s: &[T], t: &[T], k: usize) -> Option<usize> {
    debug_assert!(!s.is_empty() && s.len() <= t.len());
    if s.len() <= 64 {
        single_block(s, t, k)
    } else {
        multi_block(s, t, k)
    }
}

/// Single-block kernel: the pattern's ≤ 64 rows live in one `u64` column.
fn single_block<T: PeqUnit>(s: &[T], t: &[T], k: usize) -> Option<usize> {
    let m = s.len();
    if s.iter().all(|u| u.peq_key() < 256) {
        // Dense PEQ: direct indexing. Text units outside the table cannot
        // match any pattern unit, so they look up as the zero mask.
        let mut peq = [0u64; 256];
        for (i, u) in s.iter().enumerate() {
            peq[u.peq_key() as usize] |= 1 << i;
        }
        run_single_block(
            |c: T| {
                let key = c.peq_key();
                if key < 256 {
                    peq[key as usize]
                } else {
                    0
                }
            },
            m,
            t,
            k,
        )
    } else {
        // Interned PEQ: the pattern's distinct keys, sorted, with their
        // position masks — built on the stack (≤ 64 entries), binary
        // searched per text unit.
        let mut entries = [(0u64, 0u64); 64];
        for (i, u) in s.iter().enumerate() {
            entries[i] = (u.peq_key(), 1 << i);
        }
        entries[..m].sort_unstable_by_key(|&(key, _)| key);
        let mut len = 0;
        for i in 0..m {
            let (key, bit) = entries[i];
            if len > 0 && entries[len - 1].0 == key {
                entries[len - 1].1 |= bit;
            } else {
                entries[len] = (key, bit);
                len += 1;
            }
        }
        let entries = &entries[..len];
        run_single_block(
            |c: T| {
                let key = c.peq_key();
                match entries.binary_search_by(|&(e, _)| e.cmp(&key)) {
                    Ok(i) => entries[i].1,
                    Err(_) => 0,
                }
            },
            m,
            t,
            k,
        )
    }
}

/// The Myers column recurrence for one ≤ 64-row pattern block.
///
/// Standard formulation (Myers 1999): `VP`/`VN` are the vertical deltas of
/// the current column, `D0` the diagonal-zero mask, `HP`/`HN` the
/// horizontal deltas; the score tracks `D(m, j)` via the mask bit at row
/// `m − 1`, starting from the first column's boundary value `D(m, 0) = m`.
#[inline]
fn run_single_block<T: Copy, F: Fn(T) -> u64>(
    peq: F,
    m: usize,
    t: &[T],
    k: usize,
) -> Option<usize> {
    debug_assert!((1..=64).contains(&m));
    let mut vp: u64 = if m == 64 { !0 } else { (1 << m) - 1 };
    let mut vn: u64 = 0;
    let mask: u64 = 1 << (m - 1);
    let mut score = m;
    let n = t.len();
    for (j, &c) in t.iter().enumerate() {
        let eq = peq(c);
        let d0 = (((eq & vp).wrapping_add(vp)) ^ vp) | eq | vn;
        let hp = vn | !(d0 | vp);
        let hn = vp & d0;
        if hp & mask != 0 {
            score += 1;
        } else if hn & mask != 0 {
            score -= 1;
        }
        // The boundary row D(0, j) = j shifts a permanent +1 into HP.
        let x = (hp << 1) | 1;
        vp = (hn << 1) | !(d0 | x);
        vn = d0 & x;
        // Cut-off: each remaining text unit can repay at most one edit.
        if score > k + (n - j - 1) {
            return None;
        }
    }
    (score <= k).then_some(score)
}

/// Multi-block kernel: patterns beyond 64 units as `⌈m/64⌉` chained
/// blocks, horizontal deltas carried block-to-block within each column
/// (Hyyrö's block formulation).
fn multi_block<T: PeqUnit>(s: &[T], t: &[T], k: usize) -> Option<usize> {
    let m = s.len();
    let blocks = m.div_ceil(64);
    let tail = m - 64 * (blocks - 1); // rows in the last (partial) block

    // PEQ rows: `blocks` words per distinct key, same dense-vs-interned
    // choice as the single-block kernel (heap-backed — the pattern is
    // already long enough that one allocation is noise).
    let dense = s.iter().all(|u| u.peq_key() < 256);
    let (mut masks, mut keys): (Vec<u64>, Vec<u64>) = if dense {
        (vec![0u64; 256 * blocks], Vec::new())
    } else {
        let mut keys: Vec<u64> = s.iter().map(|u| u.peq_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        (vec![0u64; keys.len() * blocks], keys)
    };
    for (i, u) in s.iter().enumerate() {
        let row = if dense {
            u.peq_key() as usize
        } else {
            keys.binary_search(&u.peq_key()).expect("key was collected")
        };
        masks[row * blocks + i / 64] |= 1 << (i % 64);
    }
    let masks = &mut masks[..];
    let keys = &mut keys[..];

    let mut vp = vec![!0u64; blocks];
    vp[blocks - 1] = if tail == 64 { !0 } else { (1 << tail) - 1 };
    let mut vn = vec![0u64; blocks];
    let last_mask: u64 = 1 << (tail - 1);
    let mut score = m;
    let n = t.len();

    for (j, &c) in t.iter().enumerate() {
        // Resolve the text unit's PEQ row once per column.
        let row: Option<usize> = if dense {
            let key = c.peq_key();
            (key < 256).then_some(key as usize)
        } else {
            keys.binary_search(&c.peq_key()).ok()
        };
        // The boundary row D(0, j) = j feeds +1 into the bottom block.
        let mut hin: i32 = 1;
        for (i, (vpb, vnb)) in vp.iter_mut().zip(vn.iter_mut()).enumerate() {
            let eq0 = row.map_or(0, |r| masks[r * blocks + i]);
            // A negative carry entering the block acts as a match at its
            // bottom row (Hyyrö's correction to the chained recurrence).
            let eq = eq0 | u64::from(hin < 0);
            let xv = eq0 | *vnb;
            let xh = (((eq & *vpb).wrapping_add(*vpb)) ^ *vpb) | eq;
            let mut hp = *vnb | !(xh | *vpb);
            let mut hn = *vpb & xh;
            let mb = if i == blocks - 1 { last_mask } else { 1 << 63 };
            let hout = if hp & mb != 0 {
                1
            } else if hn & mb != 0 {
                -1
            } else {
                0
            };
            hp <<= 1;
            hn <<= 1;
            if hin > 0 {
                hp |= 1;
            } else if hin < 0 {
                hn |= 1;
            }
            *vpb = hn | !(xv | hp);
            *vnb = hp & xv;
            hin = hout;
        }
        match hin {
            1 => score += 1,
            -1 => score -= 1,
            _ => {}
        }
        if score > k + (n - j - 1) {
            return None;
        }
    }
    (score <= k).then_some(score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_known_cases() {
        assert_eq!(distance_slices(b"", b""), 0);
        assert_eq!(distance_slices(b"", b"abc"), 3);
        assert_eq!(distance_slices(b"kitten", b"sitting"), 3);
        assert_eq!(distance_slices(b"flaw", b"lawn"), 2);
        assert_eq!(distance_slices(b"gumbo", b"gambol"), 2);
        assert_eq!(distance_slices(b"thomson", b"thompson"), 1);
    }

    #[test]
    fn within_thresholds_exactly() {
        assert_eq!(within_slices(b"thomson", b"thompson", 1), Some(1));
        assert_eq!(within_slices(b"thomson", b"thompson", 0), None);
        assert_eq!(within_slices(b"abc", b"xyz", 2), None);
        assert_eq!(within_slices(b"abc", b"xyz", 3), Some(3));
        assert_eq!(within_slices(b"", b"xy", 2), Some(2));
        assert_eq!(within_slices(b"same", b"same", 0), Some(0));
    }

    #[test]
    fn exact_64_unit_pattern_uses_the_full_word() {
        let a: Vec<u8> = (0..64).map(|i| b'a' + (i % 4)).collect();
        let mut b = a.clone();
        b[0] = b'z';
        b[63] = b'z';
        assert_eq!(distance_slices(&a, &a), 0);
        assert_eq!(within_slices(&a, &b, 2), Some(2));
        assert_eq!(within_slices(&a, &b, 1), None);
    }

    #[test]
    fn multi_block_handles_block_boundaries() {
        // Pattern lengths straddling 64/128 exercise the carry chain.
        for len in [65usize, 96, 127, 128, 129, 200] {
            let a: Vec<u8> = (0..len).map(|i| b'a' + (i % 3) as u8).collect();
            assert_eq!(distance_slices(&a, &a), 0);
            let mut b = a.clone();
            b[len / 2] = b'z';
            assert_eq!(distance_slices(&a, &b), 1, "len {len}");
            assert_eq!(within_slices(&a, &b, 1), Some(1), "len {len}");
            let mut c = a.clone();
            c.remove(0);
            c[len / 3] = b'z';
            assert_eq!(within_slices(&a, &c, 2), Some(2), "len {len}");
        }
    }

    #[test]
    fn interned_peq_handles_large_keys() {
        // Token ids ≥ 256 force the interning map in both kernels.
        let a: Vec<u32> = (0..40).map(|i| 10_000 + i * 97).collect();
        let mut b = a.clone();
        b[7] = 1;
        b[20] = 2;
        assert_eq!(distance_slices(&a, &b), 2);
        assert_eq!(within_slices(&a, &b, 2), Some(2));
        assert_eq!(within_slices(&a, &b, 1), None);
        let long: Vec<u32> = (0..150).map(|i| 1_000_000 + i * 31).collect();
        let mut edited = long.clone();
        edited[100] = 5;
        assert_eq!(within_slices(&long, &edited, 3), Some(1));
    }

    #[test]
    fn chars_work_as_units() {
        let a: Vec<char> = "日本語の文字列".chars().collect();
        let b: Vec<char> = "日本の文字列x".chars().collect();
        assert_eq!(distance_slices(&a, &b), 2);
        assert_eq!(within_slices(&a, &b, 2), Some(2));
    }

    #[test]
    fn cutoff_abandons_hopeless_columns() {
        // Distance is 8 but the budget is 1: the kernel must return None
        // (and do so early — asserted only behaviorally here).
        let a = b"aaaaaaaabbbbbbbb";
        let b_ = b"ccccccccdddddddd";
        assert_eq!(within_slices(a, b_, 1), None);
    }
}
