//! Normalized Levenshtein Distance (Definition 2 of the paper, after Li &
//! Liu, "A Normalized Levenshtein Distance Metric", TPAMI 2007).
//!
//! `NLD(x, y) = 2·LD(x, y) / (|x| + |y| + LD(x, y))`.
//!
//! `NLD` lies in `[0, 1]` (Lemma 2) and is a metric (Theorem 1). The paper
//! uses it as the token-level distance whose threshold is *derived from* the
//! tokenized-string threshold `T` (Theorem 3), so this module also offers a
//! thresholded verifier that pushes `T` down into a banded `LD` computation.

use crate::bounds::max_ld_given_nld;
use crate::char_len;
use crate::levenshtein::{levenshtein, levenshtein_within};

/// Converts a known Levenshtein distance into the normalized distance.
///
/// Degenerate case: two empty strings have `NLD = 0`.
#[inline]
pub fn nld_from_ld(ld: usize, len_x: usize, len_y: usize) -> f64 {
    let denom = len_x + len_y + ld;
    if denom == 0 {
        0.0
    } else {
        2.0 * ld as f64 / denom as f64
    }
}

/// Normalized Levenshtein distance between two strings.
///
/// # Examples
///
/// ```
/// use tsj_strdist::nld;
/// // Paper examples (Sec. II-C2):
/// assert!((nld("Thomson", "Thompson") - 1.0 / 8.0).abs() < 1e-12);
/// assert!((nld("Alex", "Alexa") - 1.0 / 5.0).abs() < 1e-12);
/// ```
pub fn nld(x: &str, y: &str) -> f64 {
    nld_from_ld(levenshtein(x, y), char_len(x), char_len(y))
}

/// Thresholded normalized distance: `Some(NLD(x, y))` when `NLD(x, y) ≤ t`,
/// `None` otherwise.
///
/// Internally converts `t` into the Lemma 8 cap on `LD` and runs the banded
/// verifier, so the cost is `O((2k+1)·|x|)` with `k` the derived cap — far
/// cheaper than a full DP for small thresholds.
///
/// ```
/// use tsj_strdist::nld_within;
/// assert!(nld_within("Thomson", "Thompson", 0.2).is_some());
/// assert!(nld_within("Thomson", "Thompson", 0.1).is_none());
/// ```
pub fn nld_within(x: &str, y: &str, t: f64) -> Option<f64> {
    if t < 0.0 {
        return None;
    }
    if t >= 1.0 {
        return Some(nld(x, y)); // every pair qualifies (Lemma 2)
    }
    let (lx, ly) = (char_len(x), char_len(y));
    // Lemma 8 is stated relative to the longer string; order the arguments.
    let (shorter, longer) = if lx <= ly { (lx, ly) } else { (ly, lx) };
    let cap = max_ld_given_nld(shorter, longer, t);
    let ld = levenshtein_within(x, y, cap)?;
    let d = nld_from_ld(ld, lx, ly);
    (d <= t).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert!((nld("Thomson", "Thompson") - 0.125).abs() < 1e-12);
        assert!((nld("Alex", "Alexa") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn identity_and_range() {
        assert_eq!(nld("", ""), 0.0);
        assert_eq!(nld("abc", "abc"), 0.0);
        // Completely disjoint equal-length strings: LD = n, NLD = 2n/3n.
        assert!((nld("aaa", "bbb") - 2.0 / 3.0).abs() < 1e-12);
        // One empty string: the supremum 1.0 (Lemma 5's extreme).
        assert_eq!(nld("", "abc"), 1.0);
    }

    #[test]
    fn symmetry() {
        let pairs = [("chan", "chank"), ("kalan", "alan"), ("a", "")];
        for (a, b) in pairs {
            assert_eq!(nld(a, b), nld(b, a));
        }
    }

    #[test]
    fn within_agrees_with_unconditional() {
        let pairs = [
            ("Thomson", "Thompson"),
            ("Alex", "Alexa"),
            ("barak", "burak"),
            ("jonathan", "jon"),
            ("x", "y"),
        ];
        for (a, b) in pairs {
            let d = nld(a, b);
            assert_eq!(
                nld_within(a, b, d + 1e-9).map(|v| (v * 1e12).round()),
                Some((d * 1e12).round()),
                "{a} {b}"
            );
            if d > 0.0 {
                assert_eq!(nld_within(a, b, d - 1e-9), None, "{a} {b}");
            }
        }
    }

    #[test]
    fn within_threshold_one_accepts_everything() {
        assert_eq!(nld_within("", "zzzzzz", 1.0), Some(1.0));
    }

    #[test]
    fn within_rejects_negative_threshold() {
        assert_eq!(nld_within("a", "a", -0.1), None);
    }
}
