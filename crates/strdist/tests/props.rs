//! Property-based tests for the string-distance layer.
//!
//! These verify the paper's formal claims directly: Lemma 1 (LD is a
//! metric), Lemma 2 / Theorem 1 (NLD ∈ [0,1], NLD is a metric), Lemma 3
//! (length-ratio bounds), Lemmas 8–10 (threshold transfer), and agreement
//! between the banded and the full dynamic programs.

use proptest::prelude::*;
use tsj_strdist::{
    char_len, ld_exceeds_bound_given_nld_exceeds, levenshtein, levenshtein_slices,
    levenshtein_within, levenshtein_within_slices, levenshtein_within_slices_banded,
    max_ld_given_nld, min_len_given_nld, myers, nld, nld_from_ld, nld_range_from_lens, nld_within,
};

/// Short strings over a tiny alphabet maximize edit-distance edge cases
/// (ties, transposition-like patterns) per generated case.
fn small_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[abc]{0,8}").unwrap()
}

/// Occasionally longer, more varied strings, including non-ASCII.
fn name_like() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-eé]{0,16}").unwrap()
}

/// Strings long enough that, after common prefix/suffix trimming, the
/// bit-parallel kernel still needs more than one 64-bit block.
fn long_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ab]{60,120}").unwrap()
}

/// Pins the three thresholded implementations — bit-parallel Myers, the
/// scalar banded DP, and the dispatching entry point — to the full DP for
/// every `k` in `0..=max_len+1`.
fn assert_all_impls_agree<T: myers::PeqUnit + std::fmt::Debug>(a: &[T], b: &[T]) {
    let full = levenshtein_slices(a, b);
    for k in 0..=a.len().max(b.len()) + 1 {
        let want = (full <= k).then_some(full);
        assert_eq!(
            myers::within_slices(a, b, k),
            want,
            "myers {a:?} {b:?} k={k}"
        );
        assert_eq!(
            levenshtein_within_slices_banded(a, b, k),
            want,
            "banded {a:?} {b:?} k={k}"
        );
        assert_eq!(
            levenshtein_within_slices(a, b, k),
            want,
            "dispatch {a:?} {b:?} k={k}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ld_identity(x in small_string()) {
        prop_assert_eq!(levenshtein(&x, &x), 0);
    }

    #[test]
    fn ld_symmetry(x in small_string(), y in small_string()) {
        prop_assert_eq!(levenshtein(&x, &y), levenshtein(&y, &x));
    }

    #[test]
    fn ld_triangle_inequality(x in small_string(), y in small_string(), z in small_string()) {
        let xy = levenshtein(&x, &y);
        let yz = levenshtein(&y, &z);
        let xz = levenshtein(&x, &z);
        prop_assert!(xy + yz >= xz, "LD({x},{y})={xy} + LD({y},{z})={yz} < LD({x},{z})={xz}");
    }

    #[test]
    fn ld_positivity(x in small_string(), y in small_string()) {
        let d = levenshtein(&x, &y);
        prop_assert_eq!(d == 0, x == y);
        // LD is bounded by the longer length and below by the length gap.
        let (lx, ly) = (char_len(&x), char_len(&y));
        prop_assert!(d >= lx.abs_diff(ly));
        prop_assert!(d <= lx.max(ly));
    }

    #[test]
    fn banded_agrees_with_full(x in name_like(), y in name_like(), k in 0usize..12) {
        let full = levenshtein(&x, &y);
        match levenshtein_within(&x, &y, k) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= k);
            }
            None => prop_assert!(full > k, "within said >{k} but full = {full}"),
        }
    }

    #[test]
    fn myers_banded_full_agree_ascii(x in small_string(), y in small_string()) {
        assert_all_impls_agree(x.as_bytes(), y.as_bytes());
    }

    #[test]
    fn myers_banded_full_agree_unicode(x in name_like(), y in name_like()) {
        // `é` keeps these on the char-slice path with non-ASCII scalars.
        let xv: Vec<char> = x.chars().collect();
        let yv: Vec<char> = y.chars().collect();
        assert_all_impls_agree(&xv, &yv);
    }

    #[test]
    fn myers_banded_full_agree_token_ids(
        x in proptest::collection::vec(0u32..6, 0..20),
        y in proptest::collection::vec(0u32..6, 0..20),
        big_ids in 0u32..2,
    ) {
        // big_ids = 0 exercises the dense byte-keyed PEQ table; otherwise
        // a large offset forces the interning map for token ids ≥ 256.
        let offset = big_ids * 100_000;
        let xv: Vec<u32> = x.iter().map(|t| t + offset).collect();
        let yv: Vec<u32> = y.iter().map(|t| t + offset).collect();
        assert_all_impls_agree(&xv, &yv);
    }

    #[test]
    fn myers_multi_block_agrees(x in long_string(), y in long_string(), k in 0usize..16) {
        let full = levenshtein(&x, &y);
        let want = (full <= k).then_some(full);
        prop_assert_eq!(myers::within_slices(x.as_bytes(), y.as_bytes(), k), want);
        prop_assert_eq!(levenshtein_within_slices(x.as_bytes(), y.as_bytes(), k), want);
        prop_assert_eq!(levenshtein_within(&x, &y, k), want);
    }

    #[test]
    fn nld_in_unit_interval(x in name_like(), y in name_like()) {
        let d = nld(&x, &y);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d == 0.0, x == y);
    }

    #[test]
    fn nld_symmetry(x in small_string(), y in small_string()) {
        prop_assert_eq!(nld(&x, &y), nld(&y, &x));
    }

    #[test]
    fn nld_triangle_inequality(x in small_string(), y in small_string(), z in small_string()) {
        let xy = nld(&x, &y);
        let yz = nld(&y, &z);
        let xz = nld(&x, &z);
        prop_assert!(xy + yz >= xz - 1e-12,
            "NLD({x},{y})={xy} + NLD({y},{z})={yz} < NLD({x},{z})={xz}");
    }

    #[test]
    fn lemma3_bounds_hold(x in name_like(), y in name_like()) {
        let (lo, hi) = nld_range_from_lens(char_len(&x), char_len(&y));
        let d = nld(&x, &y);
        prop_assert!(lo <= d + 1e-12, "lower bound {lo} exceeds NLD {d} for {x:?},{y:?}");
        prop_assert!(d <= hi + 1e-12, "upper bound {hi} below NLD {d} for {x:?},{y:?}");
    }

    #[test]
    fn lemma8_cap_sound(x in name_like(), y in name_like(), t in 0.01f64..0.9) {
        if nld(&x, &y) <= t {
            let cap = max_ld_given_nld(char_len(&x), char_len(&y), t);
            prop_assert!(levenshtein(&x, &y) <= cap);
        }
    }

    #[test]
    fn lemma9_length_condition_sound(x in name_like(), y in name_like(), t in 0.01f64..0.9) {
        let (lx, ly) = (char_len(&x), char_len(&y));
        if lx <= ly && nld(&x, &y) <= t {
            prop_assert!(lx >= min_len_given_nld(ly, t));
        }
    }

    #[test]
    fn lemma10_bound_sound(x in name_like(), y in name_like(), t in 0.01f64..0.9) {
        if nld(&x, &y) > t {
            let bound = ld_exceeds_bound_given_nld_exceeds(char_len(&x), char_len(&y), t);
            prop_assert!(levenshtein(&x, &y) > bound);
        }
    }

    #[test]
    fn nld_within_is_exact_filter(x in name_like(), y in name_like(), t in 0.0f64..1.0) {
        let d = nld(&x, &y);
        match nld_within(&x, &y, t) {
            Some(v) => {
                prop_assert!((v - d).abs() < 1e-12);
                prop_assert!(v <= t);
            }
            None => prop_assert!(d > t),
        }
    }

    #[test]
    fn nld_from_ld_monotone_in_ld(lx in 0usize..32, ly in 0usize..32, ld in 0usize..32) {
        // NLD grows with LD for fixed lengths: verification thresholds can
        // therefore be transferred through Lemma 8 caps safely.
        let a = nld_from_ld(ld, lx, ly);
        let b = nld_from_ld(ld + 1, lx, ly);
        prop_assert!(a <= b + 1e-12);
    }
}
