//! Interned corpora of tokenized strings.
//!
//! "For efficiency, identifiers of the tokenized strings and the tokens are
//! used" (Sec. III-C). A [`Corpus`] assigns a dense [`TokenId`] to every
//! distinct token and a [`StringId`] to every input string, and maintains
//! the postings lists (token → containing strings) that drive shared-token
//! candidate generation and the `M`-frequency filter, plus the per-string
//! statistics (`L`, `T`, sorted token lengths) that drive the pruning
//! filters.

use std::collections::HashMap;

use crate::tokenized::TokenizedString;
use crate::tokenizer::Tokenizer;

/// Identifier of a distinct token within one [`Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

/// Identifier of one tokenized string within one [`Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StringId(pub u32);

impl TokenId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StringId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable, interned collection of tokenized strings.
///
/// Build one with [`Corpus::build`] or incrementally with
/// [`CorpusBuilder`].
#[derive(Debug, Clone)]
pub struct Corpus {
    // ---- token table ----
    token_text: Vec<Box<str>>,
    token_len: Vec<u32>,
    token_lookup: HashMap<Box<str>, TokenId>,
    /// Postings: for each token, the *distinct* strings containing it,
    /// sorted ascending. `postings[t].len()` is the token's document
    /// frequency (the paper's "number of tokenized strings sharing the
    /// token", compared against `M`).
    postings: Vec<Vec<StringId>>,
    // ---- string table ----
    raw: Vec<Box<str>>,
    tokens_of: Vec<Vec<TokenId>>,
    total_len: Vec<u32>,
}

impl Corpus {
    /// Tokenizes and interns every input string.
    pub fn build<I, S, T>(strings: I, tokenizer: &T) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
        T: Tokenizer,
    {
        let mut b = CorpusBuilder::new();
        for s in strings {
            b.push(s.as_ref(), tokenizer);
        }
        b.finish()
    }

    /// Number of strings.
    #[inline]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// `true` when the corpus holds no strings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Number of distinct tokens. Typically "orders of magnitude smaller
    /// than that of distinct tokenized strings" (Sec. III-D) — the property
    /// TSJ's token-domain reduction exploits.
    #[inline]
    pub fn num_tokens(&self) -> usize {
        self.token_text.len()
    }

    /// Iterates over all string ids.
    pub fn string_ids(&self) -> impl ExactSizeIterator<Item = StringId> + '_ {
        (0..self.raw.len() as u32).map(StringId)
    }

    /// Iterates over all token ids.
    pub fn token_ids(&self) -> impl ExactSizeIterator<Item = TokenId> + '_ {
        (0..self.token_text.len() as u32).map(TokenId)
    }

    /// The original (pre-tokenization) text of a string.
    #[inline]
    pub fn raw(&self, id: StringId) -> &str {
        &self.raw[id.index()]
    }

    /// The token ids of a string, in tokenizer order.
    #[inline]
    pub fn tokens(&self, id: StringId) -> &[TokenId] {
        &self.tokens_of[id.index()]
    }

    /// The paper's `L(xᵗ)`: aggregate token length in characters.
    #[inline]
    pub fn total_len(&self, id: StringId) -> usize {
        self.total_len[id.index()] as usize
    }

    /// The paper's `T(xᵗ)`: token count.
    #[inline]
    pub fn token_count(&self, id: StringId) -> usize {
        self.tokens_of[id.index()].len()
    }

    /// Text of a token.
    #[inline]
    pub fn token_text(&self, id: TokenId) -> &str {
        &self.token_text[id.index()]
    }

    /// Character length of a token.
    #[inline]
    pub fn token_len(&self, id: TokenId) -> usize {
        self.token_len[id.index()] as usize
    }

    /// Resolves token text by id.
    pub fn lookup_token(&self, text: &str) -> Option<TokenId> {
        self.token_lookup.get(text).copied()
    }

    /// Document frequency: how many *distinct* strings contain this token.
    #[inline]
    pub fn df(&self, id: TokenId) -> usize {
        self.postings[id.index()].len()
    }

    /// The distinct strings containing `token`, sorted ascending.
    #[inline]
    pub fn postings(&self, token: TokenId) -> &[StringId] {
        &self.postings[token.index()]
    }

    /// Sorted token lengths of a string — the length histogram consumed by
    /// the SLD lower-bound filter (Sec. III-E2).
    pub fn sorted_token_lens(&self, id: StringId) -> Vec<u32> {
        let mut lens: Vec<u32> = self.tokens_of[id.index()]
            .iter()
            .map(|t| self.token_len[t.index()])
            .collect();
        lens.sort_unstable();
        lens
    }

    /// Materializes an owned [`TokenizedString`] (for display/verification
    /// at API boundaries; joins work on ids).
    pub fn tokenized(&self, id: StringId) -> TokenizedString {
        TokenizedString::new(
            self.tokens_of[id.index()]
                .iter()
                .map(|t| self.token_text[t.index()].to_string()),
        )
    }

    /// Resolves a string's tokens to their texts.
    pub fn token_texts(&self, id: StringId) -> Vec<&str> {
        self.tokens_of[id.index()]
            .iter()
            .map(|t| self.token_text(*t))
            .collect()
    }
}

/// Incremental [`Corpus`] construction.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    token_text: Vec<Box<str>>,
    token_len: Vec<u32>,
    token_lookup: HashMap<Box<str>, TokenId>,
    postings: Vec<Vec<StringId>>,
    raw: Vec<Box<str>>,
    tokens_of: Vec<Vec<TokenId>>,
    total_len: Vec<u32>,
    scratch: Vec<String>,
}

impl CorpusBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizes `input` and appends it, returning its id.
    pub fn push<T: Tokenizer>(&mut self, input: &str, tokenizer: &T) -> StringId {
        self.scratch.clear();
        tokenizer.tokenize_into(input, &mut self.scratch);
        let sid = StringId(self.raw.len() as u32);
        let mut ids = Vec::with_capacity(self.scratch.len());
        let mut total = 0u32;
        for tok in self.scratch.drain(..) {
            debug_assert!(!tok.is_empty());
            let tid = match self.token_lookup.get(tok.as_str()) {
                Some(&tid) => tid,
                None => {
                    let tid = TokenId(self.token_text.len() as u32);
                    let boxed: Box<str> = tok.into_boxed_str();
                    self.token_text.push(boxed.clone());
                    let len = if boxed.is_ascii() {
                        boxed.len()
                    } else {
                        boxed.chars().count()
                    };
                    self.token_len.push(len as u32);
                    self.postings.push(Vec::new());
                    self.token_lookup.insert(boxed, tid);
                    tid
                }
            };
            total += self.token_len[tid.index()];
            // Postings are per *distinct* string: a token repeated inside
            // one string is recorded once.
            let plist = &mut self.postings[tid.index()];
            if plist.last() != Some(&sid) {
                plist.push(sid);
            }
            ids.push(tid);
        }
        self.raw.push(input.into());
        self.tokens_of.push(ids);
        self.total_len.push(total);
        sid
    }

    pub fn finish(self) -> Corpus {
        Corpus {
            token_text: self.token_text,
            token_len: self.token_len,
            token_lookup: self.token_lookup,
            postings: self.postings,
            raw: self.raw,
            tokens_of: self.tokens_of,
            total_len: self.total_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::NameTokenizer;

    fn small() -> Corpus {
        Corpus::build(
            [
                "Barak Obama",
                "Obamma, Boraak H.",
                "Burak Ubama",
                "Barak Obama",
            ],
            &NameTokenizer::default(),
        )
    }

    #[test]
    fn interning_dedups_tokens() {
        let c = small();
        assert_eq!(c.len(), 4);
        // barak, obama, obamma, boraak, h, burak, ubama
        assert_eq!(c.num_tokens(), 7);
        let barak = c.lookup_token("barak").unwrap();
        assert_eq!(c.token_text(barak), "barak");
        assert_eq!(c.token_len(barak), 5);
    }

    #[test]
    fn postings_and_df() {
        let c = small();
        let barak = c.lookup_token("barak").unwrap();
        // "Barak Obama" appears twice (ids 0 and 3).
        assert_eq!(c.df(barak), 2);
        assert_eq!(c.postings(barak), &[StringId(0), StringId(3)]);
        let h = c.lookup_token("h").unwrap();
        assert_eq!(c.df(h), 1);
    }

    #[test]
    fn repeated_token_in_one_string_counted_once_in_postings() {
        let c = Corpus::build(["bob bob bob"], &NameTokenizer::default());
        let bob = c.lookup_token("bob").unwrap();
        assert_eq!(c.df(bob), 1);
        // ...but multiplicity is preserved in the string's token list.
        assert_eq!(c.token_count(StringId(0)), 3);
        assert_eq!(c.total_len(StringId(0)), 9);
    }

    #[test]
    fn per_string_statistics() {
        let c = small();
        let s1 = StringId(1); // {obamma, boraak, h}
        assert_eq!(c.token_count(s1), 3);
        assert_eq!(c.total_len(s1), 13);
        assert_eq!(c.sorted_token_lens(s1), vec![1, 6, 6]);
        assert_eq!(c.raw(s1), "Obamma, Boraak H.");
    }

    #[test]
    fn tokenized_roundtrip() {
        let c = small();
        let ts = c.tokenized(StringId(0));
        assert_eq!(ts, TokenizedString::new(["obama", "barak"])); // multiset eq
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::build(Vec::<&str>::new(), &NameTokenizer::default());
        assert!(c.is_empty());
        assert_eq!(c.num_tokens(), 0);
        assert_eq!(c.string_ids().count(), 0);
    }

    #[test]
    fn string_with_no_tokens() {
        let c = Corpus::build(["", "  ,, "], &NameTokenizer::default());
        assert_eq!(c.len(), 2);
        assert_eq!(c.token_count(StringId(0)), 0);
        assert_eq!(c.total_len(StringId(1)), 0);
    }
}
