//! Tokenization layer: turning raw strings into the paper's *tokenized
//! strings* (finite multisets of tokens, Sec. II-A).
//!
//! A tokenizer `t(·)` maps a string `x` to a multiset
//! `xᵗ = {xᵗ¹, …, xᵗᵐ}`. The paper's experiments tokenize account names
//! "using whitespaces and punctuation characters"; [`NameTokenizer`]
//! implements exactly that (plus Unicode-aware lowercasing so that
//! adversarial case-flips do not defeat the join), while
//! [`WhitespaceTokenizer`] implements the simpler scheme of Sec. II-A.
//!
//! Two representations are provided:
//!
//! * [`TokenizedString`] — an owned token multiset with the paper's
//!   `T(xᵗ)` (token count) and `L(xᵗ)` (aggregate token length) statistics
//!   and the token-length histogram used by the TSJ pruning filter.
//! * [`Corpus`] — an interned collection of tokenized strings: every
//!   distinct token gets a dense [`TokenId`], every string a [`StringId`],
//!   and the corpus maintains the postings (token → containing strings) and
//!   document frequencies that both TSJ and the IDF-weighted baseline
//!   measures need. Joins at the scale of Sec. V only touch ids; token text
//!   is resolved back only for edit-distance work.

pub mod corpus;
pub mod tokenized;
pub mod tokenizer;

pub use corpus::{Corpus, CorpusBuilder, StringId, TokenId};
pub use tokenized::TokenizedString;
pub use tokenizer::{NameTokenizer, Tokenizer, WhitespaceTokenizer};
