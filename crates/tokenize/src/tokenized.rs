//! Owned tokenized strings: the paper's `xᵗ` with its `T(·)` / `L(·)`
//! statistics (Sec. II-A).

use crate::tokenizer::Tokenizer;

/// A tokenized string: a finite multiset of non-empty tokens.
///
/// Token order is preserved for display purposes but is *semantically
/// irrelevant*: equality, hashing and every distance defined on tokenized
/// strings treat the tokens as a multiset (that is the whole point of the
/// setwise distances — token shuffles are free).
#[derive(Debug, Clone, Default)]
pub struct TokenizedString {
    tokens: Vec<String>,
    /// Cached aggregate character length `L(xᵗ) = Σᵢ |xᵗⁱ|`.
    total_len: usize,
}

impl TokenizedString {
    /// Builds from pre-split tokens. Empty tokens are rejected because `ε`
    /// is reserved for SLD's set-level edit operations.
    ///
    /// # Panics
    ///
    /// Panics if any token is empty.
    pub fn new<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = tokens.into_iter().map(Into::into).collect();
        assert!(
            tokens.iter().all(|t| !t.is_empty()),
            "empty tokens are reserved for SLD set-level edits"
        );
        let total_len = tokens.iter().map(|t| char_count(t)).sum();
        Self { tokens, total_len }
    }

    /// Tokenizes `input` with `tokenizer`.
    pub fn from_str_with<T: Tokenizer>(input: &str, tokenizer: &T) -> Self {
        Self::new(tokenizer.tokenize(input))
    }

    /// The paper's `T(xᵗ)`: number of tokens (with multiplicity).
    #[inline]
    pub fn num_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// The paper's `L(xᵗ)`: aggregate character length of all tokens.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// `true` when the multiset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The tokens in their original order.
    #[inline]
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Token lengths (in characters) sorted ascending — the "histogram of
    /// token lengths" the TSJ pruning filter attaches to each string id
    /// (Sec. III-E2). The sorted representation is what the filter's
    /// minimum-cost length matching consumes.
    pub fn sorted_token_lens(&self) -> Vec<u32> {
        let mut lens: Vec<u32> = self.tokens.iter().map(|t| char_count(t) as u32).collect();
        lens.sort_unstable();
        lens
    }

    /// Multiset equality: same tokens with the same multiplicities,
    /// regardless of order.
    pub fn multiset_eq(&self, other: &Self) -> bool {
        if self.tokens.len() != other.tokens.len() || self.total_len != other.total_len {
            return false;
        }
        let mut a: Vec<&str> = self.tokens.iter().map(String::as_str).collect();
        let mut b: Vec<&str> = other.tokens.iter().map(String::as_str).collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl PartialEq for TokenizedString {
    fn eq(&self, other: &Self) -> bool {
        self.multiset_eq(other)
    }
}
impl Eq for TokenizedString {}

impl std::fmt::Display for TokenizedString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<String>> FromIterator<S> for TokenizedString {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Self::new(iter)
    }
}

#[inline]
fn char_count(s: &str) -> usize {
    if s.is_ascii() {
        s.len()
    } else {
        s.chars().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::NameTokenizer;

    #[test]
    fn statistics_match_paper_notation() {
        // xᵗ = {"chan", "kalan"}: T = 2, L = 9 (Sec. II-D example).
        let x = TokenizedString::new(["chan", "kalan"]);
        assert_eq!(x.num_tokens(), 2);
        assert_eq!(x.total_len(), 9);
        // yᵗ = {"chank", "alan"}: T = 2, L = 9.
        let y = TokenizedString::new(["chank", "alan"]);
        assert_eq!(y.total_len(), 9);
    }

    #[test]
    fn multiset_semantics() {
        let a = TokenizedString::new(["barak", "obama"]);
        let b = TokenizedString::new(["obama", "barak"]);
        let c = TokenizedString::new(["barak", "barak"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Multiplicity matters.
        let d = TokenizedString::new(["obama", "barak", "barak"]);
        assert_ne!(a, d);
    }

    #[test]
    #[should_panic(expected = "empty tokens")]
    fn rejects_empty_tokens() {
        let _ = TokenizedString::new(["ok", ""]);
    }

    #[test]
    fn sorted_lens() {
        let x = TokenizedString::new(["chan", "kalan", "x"]);
        assert_eq!(x.sorted_token_lens(), vec![1, 4, 5]);
    }

    #[test]
    fn unicode_lengths_in_chars() {
        let x = TokenizedString::new(["josé"]);
        assert_eq!(x.total_len(), 4);
        assert_eq!(x.sorted_token_lens(), vec![4]);
    }

    #[test]
    fn from_tokenizer() {
        let x = TokenizedString::from_str_with("Barak H. Obama", &NameTokenizer::default());
        assert_eq!(x.num_tokens(), 3);
        assert_eq!(x.total_len(), 11);
    }

    #[test]
    fn display_is_readable() {
        let x = TokenizedString::new(["a", "b"]);
        assert_eq!(format!("{x}"), r#"{"a", "b"}"#);
    }
}
