//! Tokenizer implementations (the paper's `t(·)`, Sec. II-A).

/// A tokenizer maps a string to a finite multiset of tokens.
///
/// Implementations must be deterministic and must never emit empty tokens:
/// the empty token `ε` is reserved for the set-level edit operations of
/// Definition 3 (AddEmptyToken / RemoveEmptyToken) inside the SLD
/// computation.
pub trait Tokenizer {
    /// Appends the tokens of `input` to `out`.
    ///
    /// The buffer-reuse signature keeps tokenization allocation-free in the
    /// corpus-building hot loop; use [`Tokenizer::tokenize`] for convenience.
    fn tokenize_into(&self, input: &str, out: &mut Vec<String>);

    /// Tokenizes `input` into a fresh vector.
    fn tokenize(&self, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(input, &mut out);
        out
    }
}

/// Splits on Unicode whitespace only — the "simple and commonly used
/// tokenizer" of Sec. II-A. Token text is preserved verbatim.
///
/// ```
/// use tsj_tokenize::{Tokenizer, WhitespaceTokenizer};
/// let toks = WhitespaceTokenizer.tokenize("Obamma,  Boraak H.");
/// assert_eq!(toks, vec!["Obamma,", "Boraak", "H."]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WhitespaceTokenizer;

impl Tokenizer for WhitespaceTokenizer {
    fn tokenize_into(&self, input: &str, out: &mut Vec<String>) {
        out.extend(input.split_whitespace().map(str::to_owned));
    }
}

/// The evaluation tokenizer of Sec. V: splits on whitespace *and*
/// punctuation, lowercases, and drops empty fragments.
///
/// Lowercasing is not stated in the paper but is the standard normalization
/// for name joining; it can be disabled via [`NameTokenizer::case_sensitive`].
///
/// ```
/// use tsj_tokenize::{Tokenizer, NameTokenizer};
/// let toks = NameTokenizer::default().tokenize("Obamma,  Boraak H.");
/// assert_eq!(toks, vec!["obamma", "boraak", "h"]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NameTokenizer {
    lowercase: bool,
}

impl Default for NameTokenizer {
    fn default() -> Self {
        Self { lowercase: true }
    }
}

impl NameTokenizer {
    /// A tokenizer that keeps the original character case.
    pub fn case_sensitive() -> Self {
        Self { lowercase: false }
    }
}

impl Tokenizer for NameTokenizer {
    fn tokenize_into(&self, input: &str, out: &mut Vec<String>) {
        for frag in input.split(|c: char| c.is_whitespace() || c.is_ascii_punctuation()) {
            if frag.is_empty() {
                continue;
            }
            if self.lowercase && frag.chars().any(char::is_uppercase) {
                out.push(frag.to_lowercase());
            } else {
                out.push(frag.to_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_keeps_punctuation() {
        let toks = WhitespaceTokenizer.tokenize(" Barak  Obama ");
        assert_eq!(toks, vec!["Barak", "Obama"]);
        let toks = WhitespaceTokenizer.tokenize("Obamma, Boraak H.");
        assert_eq!(toks, vec!["Obamma,", "Boraak", "H."]);
    }

    #[test]
    fn name_tokenizer_strips_punctuation_and_lowercases() {
        let t = NameTokenizer::default();
        assert_eq!(
            t.tokenize("Obamma, Boraak H."),
            vec!["obamma", "boraak", "h"]
        );
        assert_eq!(t.tokenize("O'Neil-Smith"), vec!["o", "neil", "smith"]);
        assert_eq!(t.tokenize(""), Vec::<String>::new());
        assert_eq!(t.tokenize("  ,,,  "), Vec::<String>::new());
    }

    #[test]
    fn case_sensitive_variant() {
        let t = NameTokenizer::case_sensitive();
        assert_eq!(t.tokenize("Barak H. Obama"), vec!["Barak", "H", "Obama"]);
    }

    #[test]
    fn never_emits_empty_tokens() {
        for input in ["", " ", "a  b", "--", "a--b", " ,a, "] {
            for tok in NameTokenizer::default().tokenize(input) {
                assert!(!tok.is_empty(), "input {input:?}");
            }
            for tok in WhitespaceTokenizer.tokenize(input) {
                assert!(!tok.is_empty(), "input {input:?}");
            }
        }
    }

    #[test]
    fn unicode_names_survive() {
        let t = NameTokenizer::default();
        assert_eq!(t.tokenize("José María"), vec!["josé", "maría"]);
    }

    #[test]
    fn tokenize_into_reuses_buffer() {
        let t = NameTokenizer::default();
        let mut buf = Vec::with_capacity(8);
        t.tokenize_into("one two", &mut buf);
        t.tokenize_into("three", &mut buf);
        assert_eq!(buf, vec!["one", "two", "three"]);
    }
}
