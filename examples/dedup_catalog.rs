//! Data integration & cleaning: record deduplication in a product catalog.
//!
//! The paper's Sec. I lists "record joining and deduplication in data
//! warehouses, and comparison shopping search engines" among the
//! established applications of tokenized-string joins. Product titles
//! tokenize naturally, vendors shuffle word order, and typos abound — the
//! same structure as names, at longer token counts.
//!
//! Run with: `cargo run --release --example dedup_catalog`

use tsj::{ApproximationScheme, TsjConfig, TsjJoiner};
use tsj_mapreduce::Cluster;
use tsj_tokenize::{Corpus, NameTokenizer};

fn main() {
    // A small catalog with vendor-specific listings of the same products.
    let listings = [
        "Acme Stainless Steel Water Bottle 750ml",
        "Acme Water Bottle Stainless Steel 750ml", // token shuffle
        "Acme Stainles Steel Water Botle 750ml",   // typos
        "Acme Steel Water Bottle 750 ml",          // token split
        "Globex Wireless Optical Mouse Black",
        "Globex Wireless Optical Mouse Blck",   // typo
        "Globex Optical Wireless Mouse, Black", // shuffle + punct
        "Initech Mechanical Keyboard RGB",
        "Initech Mechanical Keybord RGB", // typo
        "Umbrella Corp First Aid Kit Large",
        "Hooli Phone Charger USB C 20W",
        "Hooli Phone Charger USBC 20 W", // token merge/split
        "Vandelay Industries Latex Gloves Box 100",
        "Soylent Green Protein Bar Chocolate",
    ];
    let corpus = Corpus::build(listings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(50);

    // Data-cleaning profile per the paper's recommendation (Sec. V-C):
    // where "missing some similar records does not have a significant
    // financial impact, and the computational resources are scarce",
    // exact-token-matching is the economical choice.
    let config = TsjConfig {
        threshold: 0.25,
        scheme: ApproximationScheme::ExactTokenMatching,
        max_token_frequency: None, // tiny catalog: keep every token
        ..TsjConfig::default()
    };
    let out = TsjJoiner::new(&cluster)
        .self_join(&corpus, &config)
        .unwrap();

    println!(
        "duplicate candidates at NSLD ≤ {} ({}):",
        config.threshold,
        config.scheme.name()
    );
    for p in &out.pairs {
        println!(
            "  [{:>2} ~ {:>2}] {:.3}  {}  <->  {}",
            p.a.0,
            p.b.0,
            p.nsld,
            corpus.raw(p.a),
            corpus.raw(p.b)
        );
    }

    // Compare against the complete (fuzzy) join to show what the
    // approximation trades away.
    let fuzzy = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                scheme: ApproximationScheme::FuzzyTokenMatching,
                ..config.clone()
            },
        )
        .unwrap();
    let missed: Vec<_> = fuzzy
        .pairs
        .iter()
        .filter(|p| !out.pairs.iter().any(|q| (q.a, q.b) == (p.a, p.b)))
        .collect();
    println!(
        "\nfuzzy-token-matching finds {} pairs; exact-token-matching missed {}:",
        fuzzy.pairs.len(),
        missed.len()
    );
    for p in missed {
        println!("  {}  <->  {}", corpus.raw(p.a), corpus.raw(p.b));
    }
    println!(
        "\nrecall of the approximation: {:.3}",
        tsj::recall(&out.pairs, &fuzzy.pairs)
    );
}
