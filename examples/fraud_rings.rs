//! Fraud-ring detection: the paper's motivating application (Sec. I-A).
//!
//! Generates a synthetic account population with planted fraud rings
//! (adversarially edited names), runs the TSJ self-join, builds the
//! similarity graph, extracts connected components, and scores the detected
//! rings against the ground truth.
//!
//! Run with: `cargo run --release --example fraud_rings`

use std::collections::HashMap;

use tsj::{TsjConfig, TsjJoiner};
use tsj_datagen::workload;
use tsj_mapreduce::Cluster;
use tsj_tokenize::{Corpus, NameTokenizer};

/// Union-find over string ids (the "graph is clustered" step of Sec. I-A;
/// connected components stand in for the production clustering).
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

fn main() {
    let n = 5_000;
    let w = workload(n, 0.15, 2024);
    println!(
        "population: {} accounts, {} planted rings ({} ring members)",
        w.strings.len(),
        w.rings.len(),
        w.rings.iter().map(Vec::len).sum::<usize>()
    );

    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(200);
    let out = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                threshold: 0.2,
                ..TsjConfig::default()
            },
        )
        .expect("join succeeds");
    println!(
        "join: {} similar pairs, {:.1} simulated seconds on {} machines",
        out.pairs.len(),
        out.sim_secs(),
        cluster.machines()
    );

    // Build clusters from the similarity edges.
    let mut uf = UnionFind::new(corpus.len());
    for p in &out.pairs {
        uf.union(p.a.0, p.b.0);
    }
    let mut clusters: HashMap<u32, Vec<u32>> = HashMap::new();
    for id in 0..corpus.len() as u32 {
        clusters.entry(uf.find(id)).or_default().push(id);
    }
    let flagged: Vec<&Vec<u32>> = clusters.values().filter(|c| c.len() >= 3).collect();
    println!("flagged {} suspicious clusters (size ≥ 3)", flagged.len());

    // Score ring recovery: a ring counts as detected when some flagged
    // cluster contains a majority of its members.
    let mut detected = 0;
    for ring in &w.rings {
        let hit = flagged.iter().any(|c| {
            let inside = ring.iter().filter(|&&m| c.contains(&(m as u32))).count();
            inside * 2 > ring.len()
        });
        if hit {
            detected += 1;
        }
    }
    println!(
        "ring recovery: {detected}/{} rings detected ({:.1}%)",
        w.rings.len(),
        100.0 * detected as f64 / w.rings.len().max(1) as f64
    );

    // Show one recovered ring with its name variants.
    if let Some(ring) = w.rings.iter().find(|r| r.len() >= 4) {
        println!("\nexample planted ring:");
        for &m in ring {
            println!("  {}", w.strings[m]);
        }
    }
}
