//! Quickstart: the five-minute tour of the public API.
//!
//! Run with: `cargo run --release --example quickstart`

use tsj::{TsjConfig, TsjJoiner};
use tsj_mapreduce::Cluster;
use tsj_setdist::{nsld, sld};
use tsj_strdist::{levenshtein, nld};
use tsj_tokenize::{Corpus, NameTokenizer};

fn main() {
    // ---- 1. The distances -------------------------------------------------
    // Character level (Sec. II-C): Levenshtein and its normalized form.
    println!(
        "LD(\"Thomson\", \"Thompson\")   = {}",
        levenshtein("Thomson", "Thompson")
    );
    println!(
        "NLD(\"Thomson\", \"Thompson\")  = {:.4}",
        nld("Thomson", "Thompson")
    );

    // Tokenized-string level (Sec. II-D): setwise Levenshtein, where token
    // shuffles are free and token edits are counted exactly.
    let x = ["chan", "kalan"];
    let y = ["chank", "alan"];
    println!("SLD({{chan,kalan}}, {{chank,alan}})  = {}", sld(&x, &y));
    println!("NSLD({{chan,kalan}}, {{chank,alan}}) = {:.4}", nsld(&x, &y));

    // ---- 2. A similarity self-join ----------------------------------------
    // The motivating application (Sec. I-A): account names, some of which
    // are adversarial variants of the same bank-account holder.
    let accounts = [
        "Barak Obama",
        "Obamma, Boraak H.", // attacker variant: edits + shuffle + initial
        "Burak Ubama",       // attacker variant: vowel swaps
        "Maria Garcia Lopez",
        "Maria Garcia", // legitimate near-duplicate
        "Wei Chen",
        "John Smith",
    ];
    let corpus = Corpus::build(accounts, &NameTokenizer::default());
    let cluster = Cluster::with_machines(100);

    let config = TsjConfig {
        threshold: 0.3, // generous T to link the heavily-edited variants
        ..TsjConfig::default()
    };
    let result = TsjJoiner::new(&cluster)
        .self_join(&corpus, &config)
        .expect("join runs to completion");

    println!(
        "\nSimilar account-name pairs at NSLD ≤ {}:",
        config.threshold
    );
    for p in &result.pairs {
        println!(
            "  {:<22} ~ {:<22} (NSLD = {:.3})",
            corpus.raw(p.a),
            corpus.raw(p.b),
            p.nsld
        );
    }

    // ---- 3. The pipeline report -------------------------------------------
    // Every MapReduce stage reports simulated cluster time and skew.
    println!(
        "\nPipeline report ({} simulated machines):",
        cluster.machines()
    );
    println!("{}", result.report);
}
