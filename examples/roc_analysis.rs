//! Distance-quality analysis: NSLD vs the weighted set-based fuzzy
//! measures as fraud predictors (the Fig. 6 experiment, Sec. V-D).
//!
//! Scores the distance between each account's old and new name with four
//! measures and reports the resulting AUCs; NSLD should dominate.
//!
//! Run with: `cargo run --release --example roc_analysis`

use tsj_datagen::roc_dataset;
use tsj_fuzzyset::{auc, fuzzy_distance, FuzzyMeasure, TokenWeights};
use tsj_setdist::nsld;
use tsj_tokenize::{Corpus, NameTokenizer};

fn main() {
    let samples = roc_dataset(4000, 7);
    println!(
        "scoring {} name changes ({} fraudulent)",
        samples.len(),
        samples.iter().filter(|s| s.fraud).count()
    );

    // IDF weights from the union of old and new names (the corpus the
    // measures would have in production).
    let all_names = samples
        .iter()
        .flat_map(|s| [s.old.as_str(), s.new.as_str()]);
    let corpus = Corpus::build(all_names, &NameTokenizer::default());
    let weights = TokenWeights::from_corpus(&corpus);

    let tokenizer = NameTokenizer::default();
    let tok = |s: &str| -> Vec<String> { tsj_tokenize::Tokenizer::tokenize(&tokenizer, s) };

    let mut scored: Vec<(&str, Vec<(f64, bool)>)> = vec![
        ("NSLD", Vec::new()),
        ("weighted FJaccard", Vec::new()),
        ("weighted FCosine", Vec::new()),
        ("weighted FDice", Vec::new()),
    ];
    let delta = 0.8; // token edit-similarity threshold of the fuzzy measures
    for s in &samples {
        let old = tok(&s.old);
        let new = tok(&s.new);
        scored[0].1.push((nsld(&old, &new), s.fraud));
        for (i, m) in [
            FuzzyMeasure::Jaccard,
            FuzzyMeasure::Cosine,
            FuzzyMeasure::Dice,
        ]
        .into_iter()
        .enumerate()
        {
            scored[i + 1]
                .1
                .push((fuzzy_distance(&old, &new, &weights, delta, m), s.fraud));
        }
    }

    println!("\n{:<20} {:>8}", "measure", "AUC");
    for (name, samples) in &scored {
        println!("{:<20} {:>8.4}", name, auc(samples));
    }
    println!(
        "\n(the paper's Fig. 6 claim: NSLD's ROC dominates the weighted \
         set-based fuzzy measures on adversarial name changes)"
    );
}
