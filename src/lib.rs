//! # tsj-repro — Scalable Similarity Joins of Tokenized Strings
//!
//! Umbrella crate for the reproduction of Metwally & Huang, *Scalable
//! Similarity Joins of Tokenized Strings* (ICDE 2019). It re-exports every
//! workspace crate under one roof for the examples and integration tests;
//! library users should depend on the individual crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`strdist`] | `tsj-strdist` | LD, NLD, bounds (Lemmas 3, 8–10), Jaro |
//! | [`tokenize`] | `tsj-tokenize` | tokenizers, `TokenizedString`, `Corpus` |
//! | [`assignment`] | `tsj-assignment` | Hungarian / greedy matching |
//! | [`setdist`] | `tsj-setdist` | SLD, NSLD (Defs. 3–4, Thm. 2) |
//! | [`mapreduce`] | `tsj-mapreduce` | MapReduce runtime, `Dataset` job graphs + simulated cluster |
//! | [`passjoin`] | `tsj-passjoin` | PassJoin / MassJoin NLD joins |
//! | [`tsj`] | `tsj` | **the TSJ framework** (Sec. III) |
//! | [`metricjoin`] | `tsj-metricjoin` | HMJ metric-space baseline (Sec. V-E) |
//! | [`fuzzyset`] | `tsj-fuzzyset` | weighted FJaccard/FCosine/FDice, ROC |
//! | [`datagen`] | `tsj-datagen` | synthetic names, rings, ROC label sets |

pub use tsj;
pub use tsj_assignment as assignment;
pub use tsj_datagen as datagen;
pub use tsj_fuzzyset as fuzzyset;
pub use tsj_mapreduce as mapreduce;
pub use tsj_metricjoin as metricjoin;
pub use tsj_passjoin as passjoin;
pub use tsj_setdist as setdist;
pub use tsj_strdist as strdist;
pub use tsj_tokenize as tokenize;
