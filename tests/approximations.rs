//! The approximation trade-off surface of Sec. V-B across a (T, M) grid:
//! precision always 1.0; recall orderings; monotone candidate behaviour.

use tsj_repro::datagen::workload;
use tsj_repro::mapreduce::Cluster;
use tsj_repro::tokenize::{Corpus, NameTokenizer};
use tsj_repro::tsj::{pair_set, precision, recall, ApproximationScheme, TsjConfig, TsjJoiner};

fn join(
    corpus: &Corpus,
    cluster: &Cluster,
    t: f64,
    m: Option<usize>,
    scheme: ApproximationScheme,
) -> Vec<tsj_repro::tsj::SimilarPair> {
    TsjJoiner::new(cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: m,
                scheme,
                ..TsjConfig::default()
            },
        )
        .unwrap()
        .pairs
}

#[test]
fn approximation_grid() {
    let w = workload(700, 0.35, 777);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(32);

    for t in [0.05, 0.125, 0.2] {
        for m in [Some(60), None] {
            let fuzzy = join(
                &corpus,
                &cluster,
                t,
                m,
                ApproximationScheme::FuzzyTokenMatching,
            );
            let greedy = join(
                &corpus,
                &cluster,
                t,
                m,
                ApproximationScheme::GreedyTokenAligning,
            );
            let exact = join(
                &corpus,
                &cluster,
                t,
                m,
                ApproximationScheme::ExactTokenMatching,
            );

            // "The proposed approximations make TSJ err on the false
            // negative side, guaranteeing the precision to be always 1.0."
            assert_eq!(precision(&greedy, &fuzzy), 1.0, "t={t} m={m:?}");
            assert_eq!(precision(&exact, &fuzzy), 1.0, "t={t} m={m:?}");
            assert!(pair_set(&greedy).is_subset(&pair_set(&fuzzy)));
            assert!(pair_set(&exact).is_subset(&pair_set(&fuzzy)));

            // Greedy stays near-perfect (paper: ≥ 0.9999 on names).
            assert!(
                recall(&greedy, &fuzzy) > 0.97,
                "greedy recall collapsed at t={t} m={m:?}: {}",
                recall(&greedy, &fuzzy)
            );
        }
    }
}

#[test]
fn exact_recall_degrades_with_t_not_below_greedy() {
    let w = workload(700, 0.35, 778);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(32);
    let mut last_exact_recall = 1.0f64;
    let mut degraded = false;
    for t in [0.025, 0.1, 0.2] {
        let fuzzy = join(
            &corpus,
            &cluster,
            t,
            None,
            ApproximationScheme::FuzzyTokenMatching,
        );
        let greedy = join(
            &corpus,
            &cluster,
            t,
            None,
            ApproximationScheme::GreedyTokenAligning,
        );
        let exact = join(
            &corpus,
            &cluster,
            t,
            None,
            ApproximationScheme::ExactTokenMatching,
        );
        let rg = recall(&greedy, &fuzzy);
        let re = recall(&exact, &fuzzy);
        assert!(rg + 1e-9 >= re, "greedy below exact at t={t}: {rg} < {re}");
        if re < last_exact_recall - 1e-9 {
            degraded = true;
        }
        last_exact_recall = re;
    }
    // "increasing T has more impact on the recall of the approximations":
    // somewhere over the sweep, exact-token-matching must lose pairs.
    assert!(degraded, "exact recall never degraded over the T sweep");
}

#[test]
fn pairs_monotone_in_t_and_m() {
    let w = workload(600, 0.35, 779);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(32);

    // Monotone in T (fixed M): a larger radius only adds pairs.
    let mut prev = pair_set(&join(
        &corpus,
        &cluster,
        0.05,
        Some(100),
        ApproximationScheme::FuzzyTokenMatching,
    ));
    for t in [0.1, 0.15, 0.2] {
        let cur = pair_set(&join(
            &corpus,
            &cluster,
            t,
            Some(100),
            ApproximationScheme::FuzzyTokenMatching,
        ));
        assert!(prev.is_subset(&cur), "losing pairs as T grows to {t}");
        prev = cur;
    }

    // Monotone in M (fixed T): keeping more tokens only adds candidates.
    let mut prev = pair_set(&join(
        &corpus,
        &cluster,
        0.1,
        Some(5),
        ApproximationScheme::FuzzyTokenMatching,
    ));
    for m in [20, 100, 400] {
        let cur = pair_set(&join(
            &corpus,
            &cluster,
            0.1,
            Some(m),
            ApproximationScheme::FuzzyTokenMatching,
        ));
        assert!(prev.is_subset(&cur), "losing pairs as M grows to {m}");
        prev = cur;
    }
}
