//! Cross-crate distance consistency: the same values must be reachable
//! through every public path (raw strings, `TokenizedString`, `Corpus`),
//! and the paper's running examples must hold everywhere.

use tsj_repro::setdist::{nsld, nsld_from_sld, sld};
use tsj_repro::strdist::{levenshtein, nld};
use tsj_repro::tokenize::{Corpus, NameTokenizer, StringId, TokenizedString, Tokenizer};

#[test]
fn paper_running_examples_hold_across_the_stack() {
    // Sec. II-C: LD / NLD.
    assert_eq!(levenshtein("Thomson", "Thompson"), 1);
    assert!((nld("Thomson", "Thompson") - 0.125).abs() < 1e-12);

    // Sec. II-D: SLD / NSLD on {"chan","kalan"} vs {"chank","alan"}.
    assert_eq!(sld(&["chan", "kalan"], &["chank", "alan"]), 2);
    assert!((nsld(&["chan", "kalan"], &["chank", "alan"]) - 0.2).abs() < 1e-12);
    assert_eq!(sld(&["chan", "kalan"], &["alan"]), 5);
}

#[test]
fn corpus_and_direct_tokenization_agree() {
    let tokenizer = NameTokenizer::default();
    let raw = ["Chan Kalan", "Chank Alan", "Burak Ubama"];
    let corpus = Corpus::build(raw, &tokenizer);
    for i in 0..raw.len() {
        for j in 0..raw.len() {
            let via_corpus = nsld(
                &corpus.token_texts(StringId(i as u32)),
                &corpus.token_texts(StringId(j as u32)),
            );
            let direct = nsld(&tokenizer.tokenize(raw[i]), &tokenizer.tokenize(raw[j]));
            assert!(
                (via_corpus - direct).abs() < 1e-12,
                "corpus path and direct path disagree on {i},{j}"
            );
        }
    }
}

#[test]
fn tokenized_string_statistics_feed_definition4() {
    let x = TokenizedString::from_str_with("Chan Kalan", &NameTokenizer::default());
    let y = TokenizedString::from_str_with("Chank Alan", &NameTokenizer::default());
    assert_eq!(x.total_len(), 9);
    assert_eq!(y.total_len(), 9);
    let s = sld(x.tokens(), y.tokens());
    assert!((nsld_from_sld(s, x.total_len(), y.total_len()) - 0.2).abs() < 1e-12);
}

#[test]
fn nld_is_nsld_on_singleton_multisets() {
    // A tokenized string with one token degenerates to the string case.
    for (a, b) in [("thomson", "thompson"), ("alex", "alexa"), ("a", "zzz")] {
        let string_level = nld(a, b);
        let set_level = nsld(&[a], &[b]);
        assert!(
            (string_level - set_level).abs() < 1e-12,
            "NLD({a},{b}) = {string_level} but singleton NSLD = {set_level}"
        );
    }
}

#[test]
fn theorem3_holds_on_corpus_pairs() {
    // For corpus pairs within T, a token-level witness must exist — the
    // exact property TSJ's candidate generation relies on.
    let corpus = Corpus::build(
        ["barak obama", "barak obamma", "chan kalan", "chank alan"],
        &NameTokenizer::default(),
    );
    let t = 0.25;
    for a in corpus.string_ids() {
        for b in corpus.string_ids() {
            if a >= b {
                continue;
            }
            let ta = corpus.token_texts(a);
            let tb = corpus.token_texts(b);
            if !ta.is_empty() && !tb.is_empty() && nsld(&ta, &tb) <= t {
                let witness = ta.iter().any(|x| tb.iter().any(|y| nld(x, y) <= t));
                assert!(witness, "{ta:?} vs {tb:?}");
            }
        }
    }
}
