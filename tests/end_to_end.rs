//! Cross-crate integration: the full TSJ pipeline against the brute-force
//! reference and the HMJ baseline on one realistic workload, plus the
//! simulated-cluster behaviours the evaluation section depends on.

use tsj_repro::datagen::workload;
use tsj_repro::mapreduce::Cluster;
use tsj_repro::metricjoin::{HmjConfig, HmjJoiner};
use tsj_repro::tokenize::{Corpus, NameTokenizer};
use tsj_repro::tsj::{
    brute_force_self_join, pair_set, ApproximationScheme, DedupStrategy, TsjConfig, TsjJoiner,
};

fn setup(n: usize, seed: u64) -> Corpus {
    let w = workload(n, 0.3, seed);
    Corpus::build(&w.strings, &NameTokenizer::default())
}

#[test]
fn all_three_joiners_agree_on_the_exact_result() {
    // n = 300 keeps every joiner on the same non-trivial workload (rings,
    // shared tokens, empty-tokenization edge cases) while holding the
    // brute-force O(n²) Hungarian-verification reference — the dominant
    // cost of the whole workspace test suite — under ~15 s.
    let corpus = setup(300, 404);
    let cluster = Cluster::with_machines(32);
    let t = 0.15;

    let truth = pair_set(&brute_force_self_join(&corpus, t, 4));

    let tsj = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: None,
                ..TsjConfig::default()
            },
        )
        .unwrap();
    assert_eq!(pair_set(&tsj.pairs), truth, "TSJ fuzzy != brute force");

    let hmj: std::collections::HashSet<(u32, u32), tsj_repro::mapreduce::FxBuildHasher> =
        HmjJoiner::new(
            &cluster,
            HmjConfig {
                num_centroids: 12,
                max_partition_size: 64,
                ..HmjConfig::default()
            },
        )
        .self_join(&corpus, t)
        .unwrap()
        .pairs
        .iter()
        .map(|p| (p.a, p.b))
        .collect();
    assert_eq!(hmj, truth, "HMJ != brute force");
}

#[test]
fn simulated_runtime_decreases_with_machines() {
    let corpus = setup(800, 405);
    let run = |machines| {
        let cluster = Cluster::with_machines(machines);
        TsjJoiner::new(&cluster)
            .self_join(
                &corpus,
                &TsjConfig {
                    max_token_frequency: Some(100),
                    ..TsjConfig::default()
                },
            )
            .unwrap()
            .sim_secs()
    };
    let slow = run(10);
    let fast = run(500);
    assert!(
        fast < slow,
        "500 machines ({fast:.1}s) should beat 10 machines ({slow:.1}s)"
    );
}

#[test]
fn tsj_does_less_distance_work_than_hmj() {
    // The structural claim behind Fig. 7: TSJ confines expensive NSLD
    // evaluations to filtered candidates; HMJ spends them on partitioning
    // every record against every centroid.
    let corpus = setup(800, 406);
    let cluster = Cluster::with_machines(64);
    let t = 0.1;
    let tsj = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: Some(100),
                ..TsjConfig::default()
            },
        )
        .unwrap();
    let hmj = HmjJoiner::new(
        &cluster,
        HmjConfig {
            num_centroids: 64,
            max_partition_size: 128,
            ..HmjConfig::default()
        },
    )
    .self_join(&corpus, t)
    .unwrap();
    let tsj_verifications = tsj.report.counter("verified");
    let hmj_distances =
        hmj.report.counter("distance_computations") + hmj.report.counter("pairs_compared");
    assert!(
        hmj_distances > 5 * tsj_verifications,
        "HMJ distance work ({hmj_distances}) should dwarf TSJ verifications ({tsj_verifications})"
    );
}

#[test]
fn pipeline_report_covers_all_stages() {
    let corpus = setup(300, 407);
    let cluster = Cluster::with_machines(16);
    let out = TsjJoiner::new(&cluster)
        .self_join(&corpus, &TsjConfig::default())
        .unwrap();
    // Execution order: the MassJoin sub-graph collects before the lazily
    // recorded candidate stages execute at the final collect.
    let names: Vec<&str> = out.report.jobs().iter().map(|j| j.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "tsj.token_stats",
            "massjoin.candidates",
            "massjoin.verify",
            "tsj.shared_token",
            "tsj.expand_similar",
            "tsj.dedup_verify.one_string",
        ]
    );
    assert!(out.sim_secs() > 0.0);
    assert!(out.report.total_wall_secs() > 0.0);
}

#[test]
fn exact_token_matching_skips_the_token_join_jobs() {
    let corpus = setup(300, 408);
    let cluster = Cluster::with_machines(16);
    let out = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                scheme: ApproximationScheme::ExactTokenMatching,
                ..TsjConfig::default()
            },
        )
        .unwrap();
    assert_eq!(out.report.jobs().len(), 3, "exact mode runs 3 jobs, not 6");
    assert!(!out
        .report
        .jobs()
        .iter()
        .any(|j| j.name.starts_with("massjoin")));
}

#[test]
fn dedup_strategy_changes_worker_counts_not_results() {
    let corpus = setup(500, 409);
    let cluster = Cluster::with_machines(32);
    let run = |dedup| {
        TsjJoiner::new(&cluster)
            .self_join(
                &corpus,
                &TsjConfig {
                    dedup,
                    ..TsjConfig::default()
                },
            )
            .unwrap()
    };
    let one = run(DedupStrategy::OneString);
    let both = run(DedupStrategy::BothStrings);
    assert_eq!(pair_set(&one.pairs), pair_set(&both.pairs));
    let groups = |o: &tsj_repro::tsj::JoinOutput| {
        o.report
            .jobs()
            .iter()
            .find(|j| j.name.starts_with("tsj.dedup_verify"))
            .map(|j| j.reduce_groups)
            .unwrap()
    };
    // "grouping-on-one-string instantiates a worker for each string ...
    // grouping-on-both-strings instantiates a worker for each candidate
    // pair" — pairs outnumber strings-with-candidates.
    assert!(groups(&both) > groups(&one));
}
